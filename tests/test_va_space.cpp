#include "uvm/va_space.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(AllocLayout, BlockAlignedPlacement) {
  AllocLayout layout;
  EXPECT_EQ(layout.add(100), 0u);  // 100 bytes -> 1 block
  EXPECT_EQ(layout.add(kVaBlockSize), kPagesPerVaBlock);
  EXPECT_EQ(layout.add(kVaBlockSize + 1), 2 * kPagesPerVaBlock);
  EXPECT_EQ(layout.next_free_page(), 4 * kPagesPerVaBlock);
  EXPECT_EQ(layout.total_blocks(), 4u);
}

TEST(VaSpace, AllocationMatchesLayout) {
  VaSpace space;
  const auto& a = space.allocate(100, "a", HostInit::none());
  const auto& b = space.allocate(3 * kVaBlockSize, "b", HostInit::none());
  EXPECT_EQ(a.first_page, 0u);
  EXPECT_EQ(b.first_page, kPagesPerVaBlock);
  EXPECT_EQ(space.block_count(), 4u);
  EXPECT_EQ(space.allocations().size(), 2u);
}

TEST(VaSpace, VmaResolvesPagesToAllocations) {
  VaSpace space;
  space.allocate(kPageSize * 10, "a", HostInit::none());
  space.allocate(kPageSize * 10, "b", HostInit::none());
  const auto hit = space.vmas().find(kPagesPerVaBlock + 5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->name, "b");
  // Pages in the alignment gap belong to no VMA.
  EXPECT_FALSE(space.vmas().find(10).has_value());
}

TEST(VaSpace, SingleThreadInitMapsEverythingToOneSharer) {
  VaSpace space;
  space.allocate(kPageSize * 100, "a", HostInit::single());
  const auto& block = space.block(0);
  EXPECT_EQ(block.cpu_mapped_count(), 100u);
  EXPECT_EQ(block.cpu_sharers(), 0b1u);
  EXPECT_EQ(space.host_page_table().mapped_count(), 100u);
}

TEST(VaSpace, NoneInitLeavesPagesUnpopulated) {
  VaSpace space;
  space.allocate(kPageSize * 100, "a", HostInit::none());
  const auto& block = space.block(0);
  EXPECT_EQ(block.cpu_mapped_count(), 0u);
  EXPECT_TRUE(block.populated().none());
  EXPECT_EQ(space.host_page_table().mapped_count(), 0u);
}

TEST(VaSpace, InterleavedInitSpreadsSharersAcrossEveryBlock) {
  // Fig 11's trigger: boxed OpenMP init leaves every VABlock shared by
  // many CPU threads.
  VaSpace space;
  space.allocate(2 * kVaBlockSize, "a", HostInit::interleaved(32));
  EXPECT_EQ(sharer_count(space.block(0).cpu_sharers()), 32u);
  EXPECT_EQ(sharer_count(space.block(1).cpu_sharers()), 32u);
}

TEST(VaSpace, ChunkedInitLocalizesSharers) {
  // Static-schedule OpenMP: each VABlock touched by only ~1-2 threads.
  VaSpace space;
  space.allocate(8 * kVaBlockSize, "a", HostInit::chunked(8));
  for (VaBlockId b = 0; b < 8; ++b) {
    EXPECT_LE(sharer_count(space.block(b).cpu_sharers()), 2u) << b;
  }
}

TEST(VaSpace, UnmapBlockCpuClearsPtesAndMask) {
  VaSpace space;
  space.allocate(kVaBlockSize, "a", HostInit::single());
  EXPECT_EQ(space.host_page_table().mapped_count(), kPagesPerVaBlock);
  EXPECT_EQ(space.unmap_block_cpu(0), kPagesPerVaBlock);
  EXPECT_EQ(space.host_page_table().mapped_count(), 0u);
  EXPECT_EQ(space.block(0).cpu_mapped_count(), 0u);
  // Idempotent.
  EXPECT_EQ(space.unmap_block_cpu(0), 0u);
}

TEST(VaSpace, ResidencyQueries) {
  VaSpace space;
  space.allocate(kVaBlockSize, "a", HostInit::none());
  EXPECT_FALSE(space.is_gpu_resident(0));
  space.block(0).set_gpu_resident(0);
  EXPECT_TRUE(space.is_gpu_resident(0));
  EXPECT_FALSE(space.is_gpu_resident(1));
  // Out-of-range pages are simply non-resident.
  EXPECT_FALSE(space.is_gpu_resident(100 * kPagesPerVaBlock));
  EXPECT_EQ(space.gpu_resident_pages(), 1u);
}

class HostInitPatternTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HostInitPatternTest, InterleavedSharerCountMatchesThreads) {
  const std::uint32_t threads = GetParam();
  VaSpace space;
  space.allocate(kVaBlockSize, "a", HostInit::interleaved(threads));
  EXPECT_EQ(sharer_count(space.block(0).cpu_sharers()),
            std::min(threads, kPagesPerVaBlock));
}

INSTANTIATE_TEST_SUITE_P(Threads, HostInitPatternTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64));

}  // namespace
}  // namespace uvmsim
