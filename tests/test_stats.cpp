#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace uvmsim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

class StatsMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(StatsMergeTest, MergeMatchesSequential) {
  // Property: splitting a sample at any point and merging the halves gives
  // the same statistics as a single pass.
  Xoshiro256 rng(GetParam());
  std::vector<double> data;
  const int n = 500 + GetParam() * 37;
  for (int i = 0; i < n; ++i) data.push_back(rng.uniform_real() * 100 - 50);

  RunningStats whole;
  for (double x : data) whole.add(x);

  const std::size_t split = data.size() / (2 + GetParam() % 3);
  RunningStats a, b;
  for (std::size_t i = 0; i < split; ++i) a.add(data[i]);
  for (std::size_t i = split; i < data.size(); ++i) b.add(data[i]);
  a.merge(b);

  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsMergeTest, ::testing::Range(0, 8));

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(LinearFit, ExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i + 7.0);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_EQ(linear_fit({}, {}).n, 0u);
  EXPECT_EQ(linear_fit({1.0}, {2.0}).n, 1u);
  EXPECT_DOUBLE_EQ(linear_fit({1.0}, {2.0}).slope, 0.0);
  // Vertical line: identical x values.
  const LinearFit fit = linear_fit({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(LinearFit, NoisyLineRecoversSlopeSign) {
  Xoshiro256 rng(99);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + 10 * (rng.uniform_real() - 0.5));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 0.9), 5.0);
}

TEST(Percentile, ClampsQuantile) {
  std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1);          // underflow
  h.add(0.0);         // bin 0
  h.add(1.99);        // bin 0
  h.add(2.0);         // bin 1
  h.add(9.99);        // bin 4
  h.add(10.0);        // overflow
  h.add(100.0);       // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, ZeroBinsIsSafe) {
  Histogram h(0.0, 1.0, 0);
  h.add(0.5);
  EXPECT_EQ(h.bins(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

// Regression: a tail percentile landing in a bucket that holds a single
// sample must interpolate to the bucket midpoint, not collapse to the
// bucket lower bound (which systematically underestimates p99).
TEST(Histogram, PercentileSingleElementBucketIsNotLowerBound) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 98; ++i) h.add(5.0);  // ranks 0..97 in bucket [0, 10)
  h.add(85.0);                              // rank 98, alone in [80, 90)
  h.add(95.0);                              // rank 99, alone in [90, 100)
  // rank(p99) = 0.99 * 99 = 98.01 -> inside the single-element [80, 90)
  // bucket; interpolation places it just past that sample's midpoint.
  const double p99 = h.percentile(0.99);
  EXPECT_GT(p99, 80.0) << "p99 collapsed to the tail bucket's lower bound";
  EXPECT_NEAR(p99, 85.1, 1e-9);
  // The max lands mid-bucket too, never on the 90.0 edge.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 95.0);
  // The bulk interpolates within its own bucket: rank 49.5 of the 98
  // samples filling [0, 10) sits at the (49.5 + 0.5)/98 fraction.
  EXPECT_NEAR(h.percentile(0.5), 10.0 * 50.0 / 98.0, 1e-9);
}

TEST(Histogram, PercentileEdgesAndClippedSamples) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // empty
  h.add(-5.0);   // underflow pins to lo
  h.add(3.0);    // bucket [2, 4)
  h.add(50.0);   // overflow pins to hi
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
}

TEST(Log2Histogram, BucketBoundsAndCounts) {
  Log2Histogram h;
  h.add(0);   // bucket 0: [0, 1)
  h.add(1);   // bucket 1: [1, 2)
  h.add(2);   // bucket 2: [2, 4)
  h.add(3);   // bucket 2
  h.add(4);   // bucket 3: [4, 8)
  h.add(1024);  // bucket 11
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.sum(), 1034u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.used_buckets(), 12u);
  EXPECT_EQ(Log2Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_hi(2), 4u);
}

// The same regression as Histogram::percentile, on the log2 buckets the
// MetricsRegistry records: the lone sample in the top bucket must report
// mid-bucket, not the power-of-two lower edge.
TEST(Log2Histogram, PercentileSingleElementBucketInterpolates) {
  Log2Histogram h;
  for (int i = 0; i < 98; ++i) h.add(3);  // ranks 0..97 in bucket [2, 4)
  h.add(40);                              // rank 98, alone in [32, 64)
  h.add(100);                             // rank 99, alone in [64, 128)
  // rank(p99) = 98.01 -> inside the single-element [32, 64) bucket.
  const double p99 = h.percentile(0.99);
  EXPECT_GT(p99, 32.0) << "p99 collapsed to the tail bucket's lower bound";
  EXPECT_NEAR(p99, 32.0 + 32.0 * 0.51, 1e-9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 96.0);  // midpoint of [64, 128)
  EXPECT_NEAR(h.percentile(0.5), 2.0 + 2.0 * 50.0 / 98.0, 1e-9);
  EXPECT_DOUBLE_EQ(Log2Histogram{}.percentile(0.99), 0.0);
}

TEST(Log2Histogram, MergeMatchesSequential) {
  Xoshiro256 rng(7);
  Log2Histogram whole, a, b;
  for (int i = 0; i < 400; ++i) {
    const auto v = rng.next() % 100000;
    whole.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a, whole);
  EXPECT_DOUBLE_EQ(a.percentile(0.95), whole.percentile(0.95));
}

}  // namespace
}  // namespace uvmsim
