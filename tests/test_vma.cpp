#include "hostos/vma.hpp"

#include <gtest/gtest.h>

namespace uvmsim {
namespace {

TEST(VmaMap, InsertAndFind) {
  VmaMap map;
  EXPECT_TRUE(map.insert(10, 20, 1, "a"));
  const auto hit = map.find(15);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->alloc, 1u);
  EXPECT_EQ(hit->start, 10u);
  EXPECT_EQ(hit->end, 20u);
  EXPECT_EQ(hit->name, "a");
}

TEST(VmaMap, BoundariesAreHalfOpen) {
  VmaMap map;
  map.insert(10, 20, 1, "a");
  EXPECT_TRUE(map.find(10).has_value());
  EXPECT_TRUE(map.find(19).has_value());
  EXPECT_FALSE(map.find(9).has_value());
  EXPECT_FALSE(map.find(20).has_value());
}

TEST(VmaMap, RejectsOverlaps) {
  VmaMap map;
  EXPECT_TRUE(map.insert(10, 20, 1, "a"));
  EXPECT_FALSE(map.insert(15, 25, 2, "b"));  // overlaps right
  EXPECT_FALSE(map.insert(5, 11, 2, "b"));   // overlaps left
  EXPECT_FALSE(map.insert(12, 14, 2, "b"));  // contained
  EXPECT_FALSE(map.insert(5, 25, 2, "b"));   // contains
  EXPECT_EQ(map.size(), 1u);
}

TEST(VmaMap, AdjacentRegionsAllowed) {
  VmaMap map;
  EXPECT_TRUE(map.insert(10, 20, 1, "a"));
  EXPECT_TRUE(map.insert(20, 30, 2, "b"));
  EXPECT_TRUE(map.insert(0, 10, 3, "c"));
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.find(20)->alloc, 2u);
  EXPECT_EQ(map.find(9)->alloc, 3u);
}

TEST(VmaMap, RejectsEmptyRange) {
  VmaMap map;
  EXPECT_FALSE(map.insert(10, 10, 1, "a"));
  EXPECT_FALSE(map.insert(10, 5, 1, "a"));
}

TEST(VmaMap, EraseByStart) {
  VmaMap map;
  map.insert(10, 20, 1, "a");
  map.insert(30, 40, 2, "b");
  EXPECT_TRUE(map.erase(10));
  EXPECT_FALSE(map.erase(10));
  EXPECT_FALSE(map.erase(15));  // must be exact start
  EXPECT_FALSE(map.find(15).has_value());
  EXPECT_TRUE(map.find(35).has_value());
  EXPECT_EQ(map.total_pages(), 10u);
}

TEST(VmaMap, TotalPagesTracksInsertErase) {
  VmaMap map;
  map.insert(0, 100, 1, "a");
  map.insert(200, 250, 2, "b");
  EXPECT_EQ(map.total_pages(), 150u);
  map.erase(0);
  EXPECT_EQ(map.total_pages(), 50u);
}

TEST(VmaMap, FindOnEmptyMap) {
  VmaMap map;
  EXPECT_FALSE(map.find(0).has_value());
  EXPECT_FALSE(map.find(~0ULL).has_value());
}

}  // namespace
}  // namespace uvmsim
