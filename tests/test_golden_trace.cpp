// Golden-trace regression test: a canonical batch log, checked in under
// tests/golden/, pins down the exact simulated behaviour of the default
// driver on the paper's Listing-1 microbenchmark (vecadd-paged, one warp,
// one page per thread) on the scaled_titan_v(256) testbed.
//
// Any change to fault generation, dedup, prefetching, cost constants, or
// batch timing shows up here as a field-level diff. If the change is
// INTENDED, regenerate the fixture and commit it alongside the change:
//
//   build/tools/uvmsim_cli run --workload vecadd-paged --gpu-mb 256 \
//       --log tests/golden/vecadd_paged_titanv256.batchlog
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/log_io.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace uvmsim {
namespace {

using testutil::small_config;

constexpr const char* kFixture =
    UVMSIM_GOLDEN_DIR "/vecadd_paged_titanv256.batchlog";
constexpr const char* kRegenerate =
    "build/tools/uvmsim_cli run --workload vecadd-paged --gpu-mb 256 "
    "--log tests/golden/vecadd_paged_titanv256.batchlog";

constexpr const char* kTraceFixture =
    UVMSIM_GOLDEN_DIR "/vecadd_paged_titanv256.trace.json";
constexpr const char* kTraceRegenerate =
    "build/tools/uvmsim_cli trace --workload vecadd-paged --gpu-mb 256 "
    "--out tests/golden/vecadd_paged_titanv256.trace.json";

/// The run the fixture captures: defaults all the way down.
RunResult golden_run() {
  System system(small_config(256));
  return system.run(make_vecadd_paged());
}

/// Field-by-field comparison with one human-readable line per mismatch.
std::vector<std::string> diff_records(const BatchRecord& golden,
                                      const BatchRecord& got) {
  std::vector<std::string> diffs;
  const auto cmp = [&](const char* field, auto want, auto have) {
    if (want != have) {
      std::ostringstream msg;
      msg << field << ": golden " << want << " vs run " << have;
      diffs.push_back(msg.str());
    }
  };
  cmp("id", golden.id, got.id);
  cmp("start_ns", golden.start_ns, got.start_ns);
  cmp("end_ns", golden.end_ns, got.end_ns);

  const auto& gp = golden.phases;
  const auto& hp = got.phases;
  cmp("phases.fetch_ns", gp.fetch_ns, hp.fetch_ns);
  cmp("phases.dedup_ns", gp.dedup_ns, hp.dedup_ns);
  cmp("phases.vablock_ns", gp.vablock_ns, hp.vablock_ns);
  cmp("phases.eviction_ns", gp.eviction_ns, hp.eviction_ns);
  cmp("phases.unmap_ns", gp.unmap_ns, hp.unmap_ns);
  cmp("phases.populate_ns", gp.populate_ns, hp.populate_ns);
  cmp("phases.dma_map_ns", gp.dma_map_ns, hp.dma_map_ns);
  cmp("phases.prefetch_ns", gp.prefetch_ns, hp.prefetch_ns);
  cmp("phases.transfer_ns", gp.transfer_ns, hp.transfer_ns);
  cmp("phases.pagetable_ns", gp.pagetable_ns, hp.pagetable_ns);
  cmp("phases.replay_ns", gp.replay_ns, hp.replay_ns);

  const auto& gc = golden.counters;
  const auto& hc = got.counters;
  cmp("counters.raw_faults", gc.raw_faults, hc.raw_faults);
  cmp("counters.unique_faults", gc.unique_faults, hc.unique_faults);
  cmp("counters.dup_same_utlb", gc.dup_same_utlb, hc.dup_same_utlb);
  cmp("counters.dup_cross_utlb", gc.dup_cross_utlb, hc.dup_cross_utlb);
  cmp("counters.read_faults", gc.read_faults, hc.read_faults);
  cmp("counters.write_faults", gc.write_faults, hc.write_faults);
  cmp("counters.prefetch_faults", gc.prefetch_faults, hc.prefetch_faults);
  cmp("counters.vablocks_touched", gc.vablocks_touched,
      hc.vablocks_touched);
  cmp("counters.first_touch_vablocks", gc.first_touch_vablocks,
      hc.first_touch_vablocks);
  cmp("counters.pages_migrated", gc.pages_migrated, hc.pages_migrated);
  cmp("counters.pages_populated", gc.pages_populated, hc.pages_populated);
  cmp("counters.pages_prefetched", gc.pages_prefetched,
      hc.pages_prefetched);
  cmp("counters.bytes_h2d", gc.bytes_h2d, hc.bytes_h2d);
  cmp("counters.bytes_d2h", gc.bytes_d2h, hc.bytes_d2h);
  cmp("counters.evictions", gc.evictions, hc.evictions);
  cmp("counters.unmap_calls", gc.unmap_calls, hc.unmap_calls);
  cmp("counters.pages_unmapped", gc.pages_unmapped, hc.pages_unmapped);
  cmp("counters.dma_pages_mapped", gc.dma_pages_mapped,
      hc.dma_pages_mapped);
  cmp("counters.radix_nodes_allocated", gc.radix_nodes_allocated,
      hc.radix_nodes_allocated);
  cmp("counters.radix_grew", gc.radix_grew ? 1 : 0,
      hc.radix_grew ? 1 : 0);

  const auto cmp_list = [&](const char* field, const auto& want,
                            const auto& have, const auto& format) {
    if (want.size() != have.size()) {
      std::ostringstream msg;
      msg << field << ".size: golden " << want.size() << " vs run "
          << have.size();
      diffs.push_back(msg.str());
      return;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (want[i] != have[i]) {
        std::ostringstream msg;
        msg << field << "[" << i << "]: golden " << format(want[i])
            << " vs run " << format(have[i]);
        diffs.push_back(msg.str());
      }
    }
  };
  const auto scalar = [](auto v) { return std::to_string(v); };
  const auto pair = [](const auto& pr) {
    return std::to_string(pr.first) + ':' + std::to_string(pr.second);
  };
  cmp_list("faults_per_sm", golden.faults_per_sm, got.faults_per_sm,
           scalar);
  cmp_list("vablock_faults", golden.vablock_faults, got.vablock_faults,
           pair);
  cmp_list("vablock_service_ns", golden.vablock_service_ns,
           got.vablock_service_ns, pair);
  cmp_list("first_touch_blocks", golden.first_touch_blocks,
           got.first_touch_blocks, scalar);
  cmp_list("evicted_blocks", golden.evicted_blocks, got.evicted_blocks,
           scalar);
  return diffs;
}

TEST(GoldenTrace, VecaddPagedMatchesFixture) {
  std::ifstream in(kFixture);
  ASSERT_TRUE(in) << "missing golden fixture " << kFixture
                  << "\nregenerate with: " << kRegenerate;
  const auto parsed = read_batch_log(in);
  ASSERT_EQ(parsed.skipped_lines, 0u)
      << "corrupt fixture; regenerate with: " << kRegenerate;
  ASSERT_FALSE(parsed.log.empty());

  const auto result = golden_run();
  ASSERT_EQ(result.log.size(), parsed.log.size())
      << "batch count changed; if intended, regenerate with: "
      << kRegenerate;

  std::size_t mismatched_batches = 0;
  for (std::size_t i = 0; i < parsed.log.size(); ++i) {
    const auto diffs = diff_records(parsed.log[i], result.log[i]);
    if (diffs.empty()) continue;
    ++mismatched_batches;
    std::ostringstream report;
    report << "batch " << i << " diverges from the golden trace:";
    for (const auto& d : diffs) report << "\n  " << d;
    ADD_FAILURE() << report.str();
  }
  EXPECT_EQ(mismatched_batches, 0u)
      << "behaviour changed; if intended, regenerate with: " << kRegenerate;
}

TEST(GoldenTrace, VecaddPagedChromeTraceMatchesFixture) {
  // The same canonical run, traced: the emitted Chrome trace-event JSON
  // is pinned byte for byte. Catches any drift in span placement, track
  // assignment, event ordering, or the serializer itself.
  std::ifstream in(kTraceFixture, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace fixture " << kTraceFixture
                  << "\nregenerate with: " << kTraceRegenerate;
  std::ostringstream fixture;
  fixture << in.rdbuf();

  SystemConfig cfg = small_config(256);
  cfg.obs.trace = true;
  System system(cfg);
  system.run(make_vecadd_paged());
  const std::string got = trace_to_json(system.tracer());

  if (got != fixture.str()) {
    // Report the first diverging line, not a wall of JSON.
    std::istringstream want_in(fixture.str());
    std::istringstream got_in(got);
    std::string want_line, got_line;
    std::size_t line = 1;
    while (std::getline(want_in, want_line)) {
      if (!std::getline(got_in, got_line)) {
        ADD_FAILURE() << "trace truncated at fixture line " << line
                      << "; if intended, regenerate with: "
                      << kTraceRegenerate;
        return;
      }
      if (want_line != got_line) {
        ADD_FAILURE() << "trace diverges at line " << line << ":\n  golden: "
                      << want_line << "\n  run:    " << got_line
                      << "\nif intended, regenerate with: "
                      << kTraceRegenerate;
        return;
      }
      ++line;
    }
    ADD_FAILURE() << "trace has extra output after fixture line " << line
                  << "; if intended, regenerate with: " << kTraceRegenerate;
  }
}

TEST(GoldenTrace, TraceFixtureParsesAsChromeTraceJson) {
  // The checked-in fixture must stay loadable by the log_io reader (the
  // same subset Perfetto accepts).
  std::ifstream in(kTraceFixture);
  ASSERT_TRUE(in) << "missing golden trace fixture " << kTraceFixture;
  TraceParseResult parsed;
  ASSERT_TRUE(read_trace_json(in, parsed))
      << "fixture is not valid trace JSON; regenerate with: "
      << kTraceRegenerate;
  EXPECT_FALSE(parsed.events.empty());
  EXPECT_FALSE(parsed.track_names.empty());
}

TEST(GoldenTrace, CountersEnabledLeaveTheGoldenLogUntouched) {
  // vecadd-paged never remote-maps a page, so even with the access-
  // counter channel ENABLED the canonical batch log must stay identical
  // to the (counters-off) fixture: an armed-but-idle unit is free.
  std::ifstream in(kFixture);
  ASSERT_TRUE(in) << "missing golden fixture " << kFixture;
  const auto parsed = read_batch_log(in);
  ASSERT_EQ(parsed.skipped_lines, 0u);

  SystemConfig cfg = small_config(256);
  cfg.driver.access_counters.enabled = true;
  cfg.driver.access_counters.threshold = 1;  // hair trigger, still silent
  System system(cfg);
  const auto result = system.run(make_vecadd_paged());
  ASSERT_NE(system.access_counters(), nullptr);
  EXPECT_EQ(system.access_counters()->total_accesses(), 0u);
  ASSERT_EQ(result.log.size(), parsed.log.size());
  for (std::size_t i = 0; i < result.log.size(); ++i) {
    EXPECT_EQ(serialize_batch(result.log[i]), serialize_batch(parsed.log[i]))
        << "batch " << i;
  }
}

TEST(GoldenTrace, CounterTracedRunsAreByteIdentical) {
  // An oversubscribed thrash-pinned workload with counters AND tracing
  // on: the counter track and its spans land in the trace, and repeating
  // the run reproduces the JSON byte for byte.
  SystemConfig cfg = small_config(8);
  cfg.obs.trace = true;
  cfg.driver.prefetch_enabled = false;
  cfg.driver.big_page_promotion = false;
  cfg.driver.thrash.enabled = true;
  cfg.driver.thrash.mitigation = ThrashMitigation::kPin;
  cfg.driver.access_counters.enabled = true;
  cfg.driver.access_counters.threshold = 32;

  const auto spec = make_random(16ULL << 20, 0x5eed);
  System first(cfg);
  const auto a = first.run(spec);
  System second(cfg);
  second.run(spec);

  EXPECT_GT(a.counter_pages_promoted, 0u);
  const std::string json = trace_to_json(first.tracer());
  EXPECT_NE(json.find("access counters"), std::string::npos);
  EXPECT_NE(json.find("counter_service"), std::string::npos);
  EXPECT_EQ(json, trace_to_json(second.tracer()));
}

TEST(GoldenTrace, ShardedRunMatchesPreRefactorFixture) {
  // The fixtures were captured on the pre-event-engine runner. Sharded
  // event execution (shards=4) must land on the SAME checked-in batch
  // log, field for field — sharding is invisible to simulated behavior.
  std::ifstream in(kFixture);
  ASSERT_TRUE(in) << "missing golden fixture " << kFixture;
  const auto parsed = read_batch_log(in);
  ASSERT_EQ(parsed.skipped_lines, 0u);
  ASSERT_FALSE(parsed.log.empty());

  SystemConfig cfg = small_config(256);
  cfg.engine.shards = 4;
  System system(cfg);
  const auto result = system.run(make_vecadd_paged());
  EXPECT_EQ(system.shards(), 4u);
  ASSERT_EQ(result.log.size(), parsed.log.size());
  for (std::size_t i = 0; i < parsed.log.size(); ++i) {
    const auto diffs = diff_records(parsed.log[i], result.log[i]);
    for (const auto& d : diffs) {
      ADD_FAILURE() << "shards=4 batch " << i << ": " << d;
    }
  }
}

TEST(GoldenTrace, SteppedModeMatchesPreRefactorFixture) {
  // The time-stepped reference mode (the pre-refactor advancement style)
  // must also land on the checked-in fixture: both engine modes execute
  // the same events at the same simulated times.
  std::ifstream in(kFixture);
  ASSERT_TRUE(in) << "missing golden fixture " << kFixture;
  const auto parsed = read_batch_log(in);
  ASSERT_EQ(parsed.skipped_lines, 0u);

  SystemConfig cfg = small_config(256);
  cfg.engine.mode = AdvanceMode::kTimeStepped;
  System system(cfg);
  const auto result = system.run(make_vecadd_paged());
  // The walked quanta are the cost the event mode skips.
  EXPECT_GT(system.engine_stats().quantum_steps, 0u);
  ASSERT_EQ(result.log.size(), parsed.log.size());
  for (std::size_t i = 0; i < parsed.log.size(); ++i) {
    EXPECT_EQ(serialize_batch(result.log[i]), serialize_batch(parsed.log[i]))
        << "batch " << i;
  }
}

TEST(GoldenTrace, ShardedChromeTraceMatchesFixtureByteForByte) {
  // Chrome trace JSON under shards=4 vs the checked-in fixture: span
  // timestamps come from the event clock, so any sharding-induced drift
  // in event order or timing shows up here as a byte diff.
  std::ifstream in(kTraceFixture, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace fixture " << kTraceFixture;
  std::ostringstream fixture;
  fixture << in.rdbuf();

  SystemConfig cfg = small_config(256);
  cfg.obs.trace = true;
  cfg.engine.shards = 4;
  System system(cfg);
  system.run(make_vecadd_paged());
  EXPECT_EQ(trace_to_json(system.tracer()), fixture.str());
}

TEST(GoldenTrace, FixtureRoundTripsThroughLogIo) {
  // The fixture exercises the serializer too: parse -> serialize must
  // reproduce the file byte for byte (modulo trailing whitespace).
  std::ifstream in(kFixture);
  ASSERT_TRUE(in) << "missing golden fixture " << kFixture;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    BatchRecord record;
    ASSERT_TRUE(parse_batch(line, record));
    EXPECT_EQ(serialize_batch(record), line);
  }
}

}  // namespace
}  // namespace uvmsim
