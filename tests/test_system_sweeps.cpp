// Parameterized end-to-end sweeps: every workload under every major
// driver-policy combination must complete with its invariants intact.
// These are the regression net for the whole stack.
#include <gtest/gtest.h>

#include "core/parallel_runner.hpp"
#include "core/system.hpp"
#include "test_util.hpp"

namespace uvmsim {
namespace {

using testutil::small_config;

struct SweepCase {
  std::string label;
  std::function<WorkloadSpec()> build;
  std::uint64_t gpu_mb;  // sized to oversubscribe some workloads
};

class SystemSweepTest : public ::testing::TestWithParam<
                            std::tuple<SweepCase, bool, bool>> {};

TEST_P(SystemSweepTest, CompletesWithInvariants) {
  const auto& [c, prefetch, async_ops] = GetParam();
  SystemConfig cfg = small_config(c.gpu_mb);
  cfg.driver.prefetch_enabled = prefetch;
  cfg.driver.big_page_promotion = prefetch;
  cfg.driver.async_host_ops = async_ops;

  System system(cfg);
  const auto result = system.run(c.build());

  // Every run completes, services faults, and respects GPU capacity.
  EXPECT_GT(result.total_faults, 0u);
  EXPECT_GT(result.log.size(), 0u);
  EXPECT_LE(system.driver().va_space().gpu_resident_pages() * kPageSize,
            cfg.gpu.memory_bytes);
  EXPECT_LE(result.batch_time_ns, result.kernel_time_ns);
  EXPECT_EQ(result.forced_throttle_refills, 0u);

  // Per-batch sanity: counters conserved, phases account the duration.
  for (const auto& rec : result.log) {
    EXPECT_EQ(rec.counters.raw_faults,
              rec.counters.unique_faults + rec.counters.dup_same_utlb +
                  rec.counters.dup_cross_utlb);
    EXPECT_LE(rec.counters.unique_faults, rec.counters.raw_faults);
    if (!async_ops) {
      EXPECT_EQ(rec.duration_ns(), rec.phases.sum());
    } else {
      EXPECT_LE(rec.duration_ns(), rec.phases.sum());
    }
    EXPECT_LE(rec.counters.vablocks_touched,
              std::max(1u, rec.counters.unique_faults));
  }
}

std::vector<SweepCase> sweep_cases() {
  return {
      {"stream_small", [] { return make_stream_triad(1 << 15); }, 256},
      {"stream_oversub", [] { return make_stream_triad(1 << 20, 2); }, 16},
      {"sgemm", [] {
         GemmParams p;
         p.n = 512;
         return make_gemm(p);
       }, 256},
      {"fft", [] { return make_fft(1 << 16); }, 256},
      {"gauss_seidel", [] {
         GaussSeidelParams p;
         p.nx = 1024;
         p.ny = 256;
         return make_gauss_seidel(p);
       }, 256},
      {"hpgmg", [] {
         HpgmgParams p;
         p.fine_elements_log2 = 17;
         p.levels = 3;
         p.vcycles = 1;
         return make_hpgmg(p);
       }, 256},
      {"random", [] { return make_random(64ULL << 20, 3, 4, 64, 32); }, 256},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SystemSweepTest,
    ::testing::Combine(::testing::ValuesIn(sweep_cases()),
                       ::testing::Bool(),   // prefetch
                       ::testing::Bool()),  // async host ops
    [](const auto& info) {
      return std::get<0>(info.param).label +
             (std::get<1>(info.param) ? "_pf" : "_nopf") +
             (std::get<2>(info.param) ? "_async" : "_sync");
    });

TEST(ParallelRunner, MatchesSerialRunsWithDeterministicOrdering) {
  // The host-side thread pool runs every sweep case concurrently; each
  // System is deterministic and thread-confined, so the results must be
  // identical to serial execution, in job order.
  std::vector<RunJob> jobs;
  for (const auto& c : sweep_cases()) {
    jobs.push_back({small_config(c.gpu_mb), c.build()});
  }
  ASSERT_GE(jobs.size(), 4u);
  const auto parallel = run_parallel(jobs, 4);  // >= 4 concurrent systems

  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    System system(jobs[i].config);
    const auto serial = system.run(jobs[i].spec);
    EXPECT_EQ(parallel[i].kernel_time_ns, serial.kernel_time_ns) << i;
    EXPECT_EQ(parallel[i].batch_time_ns, serial.batch_time_ns) << i;
    EXPECT_EQ(parallel[i].total_faults, serial.total_faults) << i;
    EXPECT_EQ(parallel[i].log.size(), serial.log.size()) << i;
  }
}

TEST(ParallelRunner, PropagatesFirstExceptionByJobOrder) {
  // Job 1 oversubscribes with eviction disabled -> throws inside a worker
  // thread; the runner rethrows after draining all jobs.
  std::vector<RunJob> jobs;
  jobs.push_back({small_config(), make_stream_triad(1 << 12)});
  SystemConfig broken = small_config(16);
  broken.driver.eviction_enabled = false;
  jobs.push_back({broken, make_stream_triad(2 << 20)});
  jobs.push_back({small_config(), make_stream_triad(1 << 12)});
  EXPECT_THROW(run_parallel(jobs, 3), std::runtime_error);
}

class OversubRatioTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OversubRatioTest, EvictionScalesWithPressure) {
  // Working set 48 MB of stream arrays against a shrinking GPU.
  const std::uint64_t gpu_mb = GetParam();
  SystemConfig cfg = small_config(gpu_mb);
  System system(cfg);
  const auto result = system.run(make_stream_triad(2 << 20, 2));
  if (gpu_mb >= 64) {
    EXPECT_EQ(result.evictions, 0u) << "in-core run must not evict";
  } else {
    EXPECT_GT(result.evictions, 0u) << "oversubscribed run must evict";
    EXPECT_GT(result.bytes_d2h, 0u);
  }
  EXPECT_LE(system.driver().va_space().gpu_resident_pages() * kPageSize,
            cfg.gpu.memory_bytes);
}

INSTANTIATE_TEST_SUITE_P(Pressure, OversubRatioTest,
                         ::testing::Values(96, 64, 40, 32, 24));

}  // namespace
}  // namespace uvmsim
