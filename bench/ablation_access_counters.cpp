// Ablation: access-counter-driven migration vs fault-only servicing
// (§3's second GMMU notification channel; Figs 12-15 oversubscription
// regime).
//
// Fault-only servicing with the PIN thrashing mitigation (PR 2) is a
// one-way door: once a thrashing block is pinned to a remote (DMA)
// mapping, every future access pays the interconnect round trip forever,
// because replayable faults stop arriving for remote-mapped pages. The
// access-counter channel is the way back: the GMMU counts remote accesses
// per region and notifies the driver when a region crosses the threshold
// register, and the counter servicer promotes the hot region to GPU
// memory (lifting the thrash pin). The payoff lands on the *relaunch*:
// each workload runs twice against the same System (an iterative
// application re-entering its kernel), and the counter-assisted second
// launch starts with its hot regions already promoted, while the
// fault-only second launch pays the remote round trip for every pinned
// page again.
#include <string>

#include "analysis/log_io.hpp"
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

SystemConfig base_config() {
  // 8 MB GPU, prefetch off: the thrashing-ablation testbed. Thrashing
  // detection + PIN is on in both modes so the only delta is the counter
  // channel.
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(8));
  cfg.driver.thrash.enabled = true;
  cfg.driver.thrash.mitigation = ThrashMitigation::kPin;
  // Long-lived pins: the one-way door at its starkest. Without the
  // counter channel a pinned block stays remote across both launches.
  cfg.driver.thrash.pin_lapse_ns = 200'000'000;
  return cfg;
}

SystemConfig counter_config() {
  SystemConfig cfg = base_config();
  auto& ac = cfg.driver.access_counters;
  ac.enabled = true;
  ac.granularity_pages = 16;  // one 64 KB big page per region
  ac.threshold = 64;          // promote after 64 remote touches
  return cfg;
}

/// Two launches of the same kernel against one System: the iterative-
/// application shape the counter channel exists for.
struct IterativeRun {
  RunResult first;
  RunResult second;
};

IterativeRun run_twice(const WorkloadSpec& spec, const SystemConfig& cfg) {
  System system(cfg);
  IterativeRun out;
  out.first = system.run(spec);
  RunOptions reuse;
  reuse.reuse_allocations = true;
  out.second = system.run(spec, reuse);
  return out;
}

std::string serialize_log(const BatchLog& log) {
  std::string out;
  for (const auto& rec : log) {
    out += serialize_batch(rec);
    out += '\n';
  }
  return out;
}

std::string serialize_run(const IterativeRun& run) {
  return serialize_log(run.first.log) + "|" + serialize_log(run.second.log);
}

std::uint64_t counter_activity(const RunResult& r) {
  return r.counter_notifications + r.counter_pages_promoted + r.counter_unpins;
}

}  // namespace

int main() {
  print_header("Ablation: counter-driven migration vs fault-only servicing",
               "under oversubscription, fault-only servicing strands "
               "thrash-pinned pages on remote mappings; access-counter "
               "feedback promotes hot regions back to GPU memory and "
               "recovers relaunch time for iterative workloads");

  struct Workload {
    std::string label;
    WorkloadSpec spec;
  };
  std::vector<Workload> workloads;
  // 16 MB touched uniformly at random from an 8 MB GPU (2x oversub).
  workloads.push_back({"random 16MB/8MB", make_random(16ULL << 20, 0x5eed)});
  {
    GemmParams p;
    p.n = 1024;  // 12 MB of matrices against the same 8 MB GPU
    workloads.push_back({"sgemm n=1024", make_gemm(p)});
  }

  TablePrinter table({"workload", "mode", "launch", "kernel(ms)", "remote",
                      "promoted", "unpins", "evictions", "h2d(MB)"});
  bool counters_active = false;
  bool won_relaunch = false;
  bool deterministic = true;
  for (const auto& w : workloads) {
    const IterativeRun fault_only = run_twice(w.spec, base_config());
    const IterativeRun assisted = run_twice(w.spec, counter_config());
    const struct {
      const char* mode;
      const char* launch;
      const RunResult* r;
    } rows[] = {{"fault-only", "1", &fault_only.first},
                {"fault-only", "2", &fault_only.second},
                {"counter-assisted", "1", &assisted.first},
                {"counter-assisted", "2", &assisted.second}};
    for (const auto& row : rows) {
      const auto& r = *row.r;
      table.add_row({w.label, row.mode, row.launch,
                     fmt(r.kernel_time_ns / 1e6, 1),
                     std::to_string(r.remote_accesses),
                     std::to_string(r.counter_pages_promoted),
                     std::to_string(r.counter_unpins),
                     std::to_string(r.evictions),
                     fmt(static_cast<double>(r.bytes_h2d) / (1 << 20), 1)});
    }
    counters_active |= assisted.first.counter_pages_promoted > 0 &&
                       assisted.first.counter_unpins > 0;
    won_relaunch |=
        assisted.second.kernel_time_ns < fault_only.second.kernel_time_ns;
    // The channel is a simulation: repeating the exact run pair must
    // reproduce the exact batch logs.
    deterministic &= serialize_run(run_twice(w.spec, counter_config())) ==
                     serialize_run(assisted);
    shape_check(counter_activity(fault_only.first) == 0 &&
                    counter_activity(fault_only.second) == 0,
                w.label + ": fault-only runs have zero counter activity");
  }
  std::printf("\n%s\n", table.render().c_str());

  shape_check(counters_active,
              "counter servicing promoted pages and lifted thrash pins on "
              "at least one workload");
  shape_check(won_relaunch,
              "counter-assisted relaunch beats fault-only relaunch on at "
              "least one oversubscribed workload");
  shape_check(deterministic,
              "counter-assisted batch logs are identical across repeated "
              "run pairs");
  return 0;
}
