// Figure 7: percentage of batch time spent on actual data transfer for
// sgemm — at most ~25%, typically far lower. Management, not movement,
// dominates the fault path.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 7: per-batch data-transfer time fraction (sgemm)",
               "transfer accounts for at most ~25% of batch time and is "
               "typically far lower");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
  GemmParams p;
  p.n = 1024;
  const auto result = run_once(make_gemm(p), cfg);

  std::vector<double> fractions;
  ScatterPlot plot("batch id", "transfer fraction (%)", 72, 18);
  for (const auto& rec : result.log) {
    const double frac = rec.transfer_fraction() * 100.0;
    fractions.push_back(frac);
    plot.add(rec.id, frac);
  }
  std::printf("%s\n", plot.render().c_str());

  const double p50 = percentile(fractions, 0.50);
  const double p90 = percentile(fractions, 0.90);
  const double p99 = percentile(fractions, 0.99);
  const double mx = percentile(fractions, 1.0);
  std::size_t above25 = 0;
  for (const double f : fractions) {
    if (f > 25.0) ++above25;
  }

  TablePrinter table({"metric", "value"});
  table.add_row({"batches", std::to_string(fractions.size())});
  table.add_row({"median transfer fraction", fmt(p50, 1) + "%"});
  table.add_row({"p90", fmt(p90, 1) + "%"});
  table.add_row({"p99", fmt(p99, 1) + "%"});
  table.add_row({"max", fmt(mx, 1) + "%"});
  table.add_row({"batches above 25%",
                 std::to_string(above25) + " / " +
                     std::to_string(fractions.size())});
  std::printf("%s\n", table.render().c_str());

  shape_check(p90 <= 30.0,
              "90% of batches spend under ~30% of their time transferring");
  shape_check(p50 <= 25.0, "the typical batch is far below the 25% ceiling");
  shape_check(above25 <= fractions.size() / 10,
              "batches exceeding 25% transfer time are rare");
  return 0;
}
