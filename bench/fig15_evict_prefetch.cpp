// Figure 15: dgemm with eviction AND prefetching — the paper's four-panel
// batch profile. Prefetching stays active throughout; evictions cluster
// later in execution with batch sizes similar to the non-prefetch case;
// CPU unmapping hits early-touch batches and diminishes; DMA setup cost
// recurs intermittently.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 15: dgemm with eviction + prefetching",
               "prefetching persists under oversubscription; evictions "
               "arrive late with modest batch sizes; unmap costs fade "
               "after every VABlock's first GPU touch; DMA setup stays "
               "intermittent");

  // 3 x 18 MB double matrices vs 32 MB GPU.
  GemmParams p;
  p.n = 1536;
  p.double_precision = true;
  SystemConfig cfg = presets::scaled_titan_v(32);
  const auto result = run_once(make_gemm(p), cfg);

  // Panel (a): migration size per batch, prefetch-flagged.
  ScatterPlot a("batch id", "migrated (KB)", 72, 14);
  // Panel (b)-(d) statistics.
  std::uint64_t evictions_first_half = 0, evictions_second_half = 0;
  SimTime unmap_first_half = 0, unmap_second_half = 0;
  std::uint32_t dma_batches = 0;
  RunningStats evict_batch_sizes, all_batch_sizes;
  const std::size_t half = result.log.size() / 2;
  for (std::size_t i = 0; i < result.log.size(); ++i) {
    const auto& rec = result.log[i];
    a.add(rec.id, static_cast<double>(rec.counters.bytes_h2d) / 1024.0,
          rec.counters.pages_prefetched > 0 ? 4 : 0);
    (i < half ? evictions_first_half : evictions_second_half) +=
        rec.counters.evictions;
    (i < half ? unmap_first_half : unmap_second_half) += rec.phases.unmap_ns;
    if (rec.counters.dma_pages_mapped > 0) ++dma_batches;
    all_batch_sizes.add(rec.counters.raw_faults);
    if (rec.counters.evictions > 0) {
      evict_batch_sizes.add(rec.counters.raw_faults);
    }
  }
  std::printf("(a) migration sizes ('*' = batch includes prefetching):\n%s\n",
              a.render().c_str());

  TablePrinter table({"panel", "metric", "value"});
  table.add_row({"(b)", "evictions in first half of run",
                 std::to_string(evictions_first_half)});
  table.add_row({"(b)", "evictions in second half",
                 std::to_string(evictions_second_half)});
  table.add_row({"(b)", "mean batch size (eviction batches)",
                 fmt(evict_batch_sizes.mean(), 1)});
  table.add_row({"(b)", "mean batch size (all batches)",
                 fmt(all_batch_sizes.mean(), 1)});
  table.add_row({"(c)", "unmap time first half (us)",
                 fmt_us(unmap_first_half)});
  table.add_row({"(c)", "unmap time second half (us)",
                 fmt_us(unmap_second_half)});
  table.add_row({"(d)", "batches creating DMA mappings",
                 std::to_string(dma_batches) + " / " +
                     std::to_string(result.log.size())});
  std::printf("%s\n", table.render().c_str());

  shape_check(evictions_first_half + evictions_second_half > 0,
              "the run oversubscribed and evicted");
  shape_check(evictions_second_half > evictions_first_half,
              "evictions occur predominantly later in the computation");
  shape_check(unmap_second_half < unmap_first_half,
              "CPU unmapping cost diminishes once every VABlock has been "
              "GPU-touched once");
  shape_check(dma_batches < result.log.size(),
              "DMA state setup is intermittent, not universal");
  std::uint64_t prefetched_late = 0;
  for (std::size_t i = half; i < result.log.size(); ++i) {
    prefetched_late += result.log[i].counters.pages_prefetched;
  }
  shape_check(prefetched_late > 0,
              "prefetching is still active late in the run");
  return 0;
}
