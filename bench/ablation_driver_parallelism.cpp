// Section 6 what-if: parallelizing the driver.
//
// "The current architecture would lend itself towards straightforward
// parallelization among VABlocks, but our workload analysis shows this
// would create a very imbalanced workload. Parallelizing faults per SM
// may be more reasonable if devices supported targeted per SM replay."
//
// This bench quantifies both options on recorded batch logs via LPT
// scheduling of each batch's independent work units.
#include "analysis/parallelism.hpp"
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Ablation: hypothetical driver parallelization (paper §6)",
               "per-VABlock parallelism is limited by skewed per-block "
               "work; per-SM parallelism balances better because batches "
               "mix faults from nearly all SMs");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  TablePrinter table({"app", "workers", "VABlock speedup", "VABlk imbalance",
                      "per-SM speedup", "per-SM imbalance"});
  double block_speedup_sum = 0, sm_speedup_sum = 0;
  std::size_t rows = 0;
  for (const auto& entry : paper_roster()) {
    const auto result = run_once(entry.spec, cfg);
    for (const unsigned workers : {4u, 8u}) {
      const auto by_block = estimate_vablock_parallel(result.log, workers);
      const auto by_sm = estimate_per_sm_parallel(result.log, workers);
      table.add_row({entry.label, std::to_string(workers),
                     fmt(by_block.speedup, 2) + "x",
                     fmt(by_block.mean_imbalance, 2),
                     fmt(by_sm.speedup, 2) + "x",
                     fmt(by_sm.mean_imbalance, 2)});
      if (workers == 8) {
        block_speedup_sum += by_block.speedup;
        sm_speedup_sum += by_sm.speedup;
        ++rows;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  const double block_avg = block_speedup_sum / static_cast<double>(rows);
  const double sm_avg = sm_speedup_sum / static_cast<double>(rows);
  std::printf("mean speedup at 8 workers: per-VABlock %.2fx, per-SM "
              "%.2fx (ideal 8x)\n\n",
              block_avg, sm_avg);

  shape_check(block_avg < 5.0,
              "per-VABlock parallelism falls far short of ideal (the "
              "imbalanced workload the paper predicts from Table 3)");
  shape_check(sm_avg > block_avg,
              "per-SM parallelism balances better than per-VABlock "
              "(batches mix faults from nearly all SMs, Table 2)");
  return 0;
}
