// Section 6 what-if AND live model: parallelizing the driver.
//
// "The current architecture would lend itself towards straightforward
// parallelization among VABlocks, but our workload analysis shows this
// would create a very imbalanced workload. Parallelizing faults per SM
// may be more reasonable if devices supported targeted per SM replay."
//
// Two views of the same question, which must agree exactly:
//   * estimated — analysis::parallelism applied post-hoc to a recorded
//     serial batch log (the paper's what-if methodology);
//   * measured  — the live servicing model's timing (uvm/lpt_schedule,
//     the code FaultServicer runs with DriverConfig::parallelism set)
//     replayed over the identical batches.
// Both derive from the shared LPT scheduler, so |measured - estimated|
// must be < 1e-9 for every workload, policy, and worker count.
//
// A full dynamic run (faster replays feed back into fault generation) is
// also shown for one workload: the end-to-end batch time shrinks too.
#include <cmath>

#include "analysis/parallelism.hpp"
#include "bench_util.hpp"
#include "core/parallel_runner.hpp"
#include "uvm/lpt_schedule.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

/// Speedup the live model yields on the recorded batches: serial time
/// over the sum of scheduled_batch_duration — FaultServicer's arithmetic.
double live_replay_speedup(const BatchLog& log,
                           const DriverParallelismConfig& cfg) {
  SimTime serial = 0;
  SimTime parallel = 0;
  for (const auto& rec : log) {
    serial += rec.duration_ns();
    parallel += scheduled_batch_duration(rec, cfg);
  }
  return parallel > 0 ? static_cast<double>(serial) /
                            static_cast<double>(parallel)
                      : 1.0;
}

}  // namespace

int main() {
  print_header("Ablation: driver parallelization, what-if vs live model "
               "(paper §6)",
               "per-VABlock parallelism is limited by skewed per-block "
               "work; per-SM parallelism balances better because batches "
               "mix faults from nearly all SMs");

  const SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  // All roster entries are independent systems: run them concurrently
  // (core/parallel_runner) with results in roster order.
  const auto roster = paper_roster();
  std::vector<RunJob> jobs;
  for (const auto& entry : roster) jobs.push_back({cfg, entry.spec});
  const auto results = run_parallel(jobs);

  TablePrinter table({"app", "workers", "VABlk est", "VABlk live",
                      "VABlk imbal", "per-SM est", "per-SM live",
                      "per-SM imbal"});
  double block_speedup_sum = 0, sm_speedup_sum = 0;
  double max_mismatch = 0;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < roster.size(); ++i) {
    const auto& log = results[i].log;
    for (const unsigned workers : {1u, 2u, 4u, 8u}) {
      const auto by_block = estimate_vablock_parallel(log, workers);
      const auto by_sm = estimate_per_sm_parallel(log, workers);
      const double live_block = live_replay_speedup(
          log, {ServicingPolicy::kPerVaBlock, workers});
      const double live_sm =
          live_replay_speedup(log, {ServicingPolicy::kPerSm, workers});
      max_mismatch = std::max({max_mismatch,
                               std::abs(by_block.speedup - live_block),
                               std::abs(by_sm.speedup - live_sm)});
      table.add_row({roster[i].label, std::to_string(workers),
                     fmt(by_block.speedup, 2) + "x",
                     fmt(live_block, 2) + "x",
                     fmt(by_block.mean_imbalance, 2),
                     fmt(by_sm.speedup, 2) + "x", fmt(live_sm, 2) + "x",
                     fmt(by_sm.mean_imbalance, 2)});
      if (workers == 8) {
        block_speedup_sum += by_block.speedup;
        sm_speedup_sum += by_sm.speedup;
        ++rows;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());

  const double block_avg = block_speedup_sum / static_cast<double>(rows);
  const double sm_avg = sm_speedup_sum / static_cast<double>(rows);
  std::printf("mean speedup at 8 workers: per-VABlock %.2fx, per-SM "
              "%.2fx (ideal 8x); max |estimated - live| = %.3g\n\n",
              block_avg, sm_avg, max_mismatch);

  // Full dynamic runs: the live model inside the servicing loop, where
  // shorter batches also change downstream fault arrival.
  SystemConfig serial_cfg = cfg;
  System serial_system(serial_cfg);
  const auto serial_run = serial_system.run(roster[5].spec);  // gauss-seidel
  TablePrinter dyn({"run", "batches", "batch time (ms)", "kernel (ms)"});
  dyn.add_row({"serial", std::to_string(serial_run.log.size()),
               fmt(serial_run.batch_time_ns / 1e6, 2),
               fmt(serial_run.kernel_time_ns / 1e6, 2)});
  SimTime dyn_batch_ns = serial_run.batch_time_ns;
  for (const unsigned workers : {4u, 8u}) {
    SystemConfig par_cfg = cfg;
    par_cfg.driver.parallelism = {ServicingPolicy::kPerSm, workers};
    System par_system(par_cfg);
    const auto par_run = par_system.run(roster[5].spec);
    dyn.add_row({"per-SM x" + std::to_string(workers),
                 std::to_string(par_run.log.size()),
                 fmt(par_run.batch_time_ns / 1e6, 2),
                 fmt(par_run.kernel_time_ns / 1e6, 2)});
    if (workers == 8) dyn_batch_ns = par_run.batch_time_ns;
  }
  std::printf("%s\n", dyn.render().c_str());

  shape_check(max_mismatch < 1e-9,
              "live servicing model and what-if estimator agree within "
              "1e-9 on every workload/policy/worker combination (shared "
              "LPT scheduler)");
  shape_check(block_avg < 5.0,
              "per-VABlock parallelism falls far short of ideal (the "
              "imbalanced workload the paper predicts from Table 3)");
  shape_check(sm_avg > block_avg,
              "per-SM parallelism balances better than per-VABlock "
              "(batches mix faults from nearly all SMs, Table 2)");
  shape_check(dyn_batch_ns < serial_run.batch_time_ns,
              "a full dynamic run with 8 per-SM workers spends less "
              "aggregate time servicing batches than the serial driver");
  return 0;
}
