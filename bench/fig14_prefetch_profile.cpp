// Figure 14: sgemm batch profiles with prefetching enabled. Prefetching
// removes the bulk of mid-range batches (93% fewer in the paper); the
// remaining high-cost outliers are first-touch batches dominated by DMA
// mapping + radix-tree state initialization (up to ~64% of batch time).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 14: sgemm batch profiles with prefetching",
               "prefetch eliminates most batches; surviving outliers spend "
               "a large share of their time creating DMA mappings / radix "
               "state, which prefetching cannot remove");

  GemmParams p;
  p.n = 1024;
  const auto spec = make_gemm(p);

  const auto off = run_once(spec, no_prefetch(presets::scaled_titan_v(512)));
  const auto on = run_once(spec, presets::scaled_titan_v(512));

  const double reduction =
      1.0 - static_cast<double>(on.log.size()) /
                static_cast<double>(off.log.size());

  ScatterPlot plot("data migrated (KB)", "batch time (us)", 72, 20);
  double max_dma_frac = 0;
  std::uint32_t first_touch_batches = 0;
  for (const auto& rec : on.log) {
    const unsigned series = rec.counters.first_touch_vablocks > 0 ? 4 : 0;
    plot.add(static_cast<double>(rec.counters.bytes_h2d) / 1024.0,
             static_cast<double>(rec.duration_ns()) / 1000.0, series);
    max_dma_frac = std::max(max_dma_frac, rec.dma_fraction());
    if (rec.counters.first_touch_vablocks > 0) ++first_touch_batches;
  }
  std::printf("prefetch-on batches ('*' = first-touch DMA batches):\n%s\n",
              plot.render().c_str());

  TablePrinter table({"metric", "no prefetch", "prefetch"});
  table.add_row({"batches", std::to_string(off.log.size()),
                 std::to_string(on.log.size())});
  table.add_row({"kernel time (ms)", fmt(off.kernel_time_ns / 1e6, 2),
                 fmt(on.kernel_time_ns / 1e6, 2)});
  table.add_row({"pages prefetched", "0",
                 std::to_string([&] {
                   std::uint64_t total = 0;
                   for (const auto& rec : on.log) {
                     total += rec.counters.pages_prefetched;
                   }
                   return total;
                 }())});
  std::printf("%s\n", table.render().c_str());
  std::printf("batch reduction from prefetching: %.1f%% (paper: 93%%)\n",
              reduction * 100.0);
  std::printf("max DMA/radix share of a batch: %.1f%% (paper: up to 64%%)\n",
              max_dma_frac * 100.0);
  std::printf("first-touch DMA batches remaining: %u (compulsory — "
              "prefetch cannot remove them)\n\n",
              first_touch_batches);

  // Threshold ablation (DESIGN.md §6).
  TablePrinter ablation({"prefetch threshold", "batches", "kernel(ms)",
                         "pages prefetched"});
  for (const double threshold : {0.26, 0.51, 0.76}) {
    SystemConfig cfg = presets::scaled_titan_v(512);
    cfg.driver.prefetch_threshold = threshold;
    const auto result = run_once(spec, cfg);
    std::uint64_t prefetched = 0;
    for (const auto& rec : result.log) {
      prefetched += rec.counters.pages_prefetched;
    }
    ablation.add_row({fmt(threshold, 2), std::to_string(result.log.size()),
                      fmt(result.kernel_time_ns / 1e6, 2),
                      std::to_string(prefetched)});
  }
  std::printf("threshold ablation:\n%s\n", ablation.render().c_str());

  shape_check(reduction >= 0.60,
              "prefetching removes the large majority of batches "
              "(paper: 93% on the testbed)");
  shape_check(max_dma_frac >= 0.30,
              "surviving outlier batches are dominated by DMA/radix state "
              "setup (paper: up to 64%)");
  shape_check(on.kernel_time_ns < off.kernel_time_ns,
              "prefetching improves end-to-end time");
  return 0;
}
