// Host throughput harness for the event-driven simulation core.
//
// Unlike the fig*/tab* binaries (which reproduce paper RESULTS), this one
// measures the SIMULATOR: how fast the discrete-event engine advances
// simulated time compared to the time-stepped reference mode, and how the
// host shard count affects wall-clock throughput. Three paper workloads
// are timed under five engine configurations each:
//
//   stepped          time-stepped reference (quantum walk + idle polls)
//   event x1/2/4/8   event-driven engine, 1/2/4/8 host shards
//
// For every (workload, config) cell the best-of-N wall time yields
//   sim_ns_per_sec    simulated ns advanced per host second
//   faults_per_sec    raw fault-buffer arrivals processed per host second
//   events_per_sec    engine events executed per host second
// and speedup_vs_stepped = sim_ns_per_sec / stepped's sim_ns_per_sec.
//
// vecadd-paged is the idle-heavy cell: one warp faulting one page at a
// time leaves the timeline dominated by gaps the event engine jumps in
// O(1) while the stepped mode walks them quantum by quantum — this is
// where the engine's >=3x advance-rate win shows up.
//
// Results are written as BENCH_throughput.json (see --out). CI runs the
// --smoke variant and diffs events_per_sec against the committed baseline
// with a 20% regression gate.
//
// Usage: bench_throughput [--smoke] [--reps N] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace uvmsim {
namespace {

struct Cell {
  std::string engine;  // "stepped" | "event"
  unsigned shards = 1;
  double wall_ms = 0;
  SimTime sim_ns = 0;
  std::uint64_t faults = 0;
  std::uint64_t events = 0;
  std::uint64_t quantum_steps = 0;
  double sim_ns_per_sec = 0;
  double faults_per_sec = 0;
  double events_per_sec = 0;
  double speedup_vs_stepped = 0;
};

struct Workload {
  std::string name;
  bool idle_heavy = false;
  WorkloadSpec spec;
  SystemConfig config;
};

std::vector<Workload> make_workloads(bool smoke) {
  std::vector<Workload> out;
  {
    // Idle-heavy: one warp, one page per fault group, with the host
    // wakeup latency set to the paper's batch-handling scale — measured
    // fault latencies run from a 45 us minimum to hundreds of us under
    // load, while the 3 us default models a hot-polling worker. Sparse
    // single-page batches separated by ~200 us of servicing latency
    // leave the timeline almost entirely idle — gaps the event engine
    // jumps in O(1) while the stepped reference walks them 100 ns at a
    // time.
    Workload w{"vecadd-paged", true, make_vecadd_paged(32, 12),
               presets::scaled_titan_v(64)};
    w.config.driver.wakeup_ns = 200'000;
    out.push_back(std::move(w));
  }
  {
    Workload w{"stream", false,
               make_stream_triad(smoke ? (1u << 16) : (1u << 20)),
               presets::scaled_titan_v(256)};
    out.push_back(std::move(w));
  }
  {
    GaussSeidelParams p;
    p.nx = smoke ? 512u : 2048u;
    p.ny = smoke ? 256u : 1024u;
    Workload w{"gauss-seidel", false, make_gauss_seidel(p),
               presets::scaled_titan_v(256)};
    out.push_back(std::move(w));
  }
  return out;
}

Cell measure(const Workload& w, AdvanceMode mode, unsigned shards, int reps) {
  Cell cell;
  cell.engine = mode == AdvanceMode::kTimeStepped ? "stepped" : "event";
  cell.shards = shards;
  double best_ms = 0;
  for (int rep = 0; rep < reps; ++rep) {
    SystemConfig config = w.config;
    config.engine.mode = mode;
    config.engine.shards = shards;
    System system(config);
    const auto t0 = std::chrono::steady_clock::now();
    const RunResult result = system.run(w.spec);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
      cell.sim_ns = result.kernel_time_ns;
      cell.faults = result.total_faults;
      cell.events = system.engine_stats().executed;
      cell.quantum_steps = system.engine_stats().quantum_steps;
    }
  }
  cell.wall_ms = best_ms;
  const double secs = best_ms / 1e3 > 0 ? best_ms / 1e3 : 1e-9;
  cell.sim_ns_per_sec = static_cast<double>(cell.sim_ns) / secs;
  cell.faults_per_sec = static_cast<double>(cell.faults) / secs;
  cell.events_per_sec = static_cast<double>(cell.events) / secs;
  return cell;
}

void write_json(const std::string& path, bool smoke, bool partial,
                const std::vector<Workload>& workloads,
                const std::vector<std::vector<Cell>>& cells) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bench_throughput: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  char buf[256];
  out << "{\n  \"schema\": \"uvmsim-bench-throughput/1\",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"partial\": " << (partial ? "true" : "false") << ",\n";
  out << "  \"workloads\": [\n";
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    out << "    {\n      \"name\": \"" << workloads[wi].name << "\",\n";
    out << "      \"idle_heavy\": "
        << (workloads[wi].idle_heavy ? "true" : "false") << ",\n";
    out << "      \"runs\": [\n";
    for (std::size_t ci = 0; ci < cells[wi].size(); ++ci) {
      const Cell& c = cells[wi][ci];
      std::snprintf(
          buf, sizeof buf,
          "        {\"engine\": \"%s\", \"shards\": %u, \"wall_ms\": %.3f, "
          "\"sim_ns\": %llu, \"faults\": %llu, \"events\": %llu, "
          "\"quantum_steps\": %llu,",
          c.engine.c_str(), c.shards, c.wall_ms,
          static_cast<unsigned long long>(c.sim_ns),
          static_cast<unsigned long long>(c.faults),
          static_cast<unsigned long long>(c.events),
          static_cast<unsigned long long>(c.quantum_steps));
      out << buf;
      std::snprintf(buf, sizeof buf,
                    " \"sim_ns_per_sec\": %.0f, \"faults_per_sec\": %.0f, "
                    "\"events_per_sec\": %.0f, \"speedup_vs_stepped\": %.2f}",
                    c.sim_ns_per_sec, c.faults_per_sec, c.events_per_sec,
                    c.speedup_vs_stepped);
      out << buf << (ci + 1 < cells[wi].size() ? ",\n" : "\n");
    }
    out << "      ]\n    }" << (wi + 1 < workloads.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

int run_main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::string out_path = "BENCH_throughput.json";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_throughput [--smoke] [--reps N] [--out "
                   "PATH] [--only WORKLOAD]\n");
      return 2;
    }
  }
  if (reps < 1) reps = 1;

  bench::print_header(
      "bench_throughput: event-engine advance rate & shard scaling",
      "simulator throughput (host metric; not a paper figure)");

  // --only narrows the matrix to one workload for quick A/B iteration;
  // the resulting artifact is marked "partial" so it can never stand in
  // for a full baseline (CI rejects it, like smoke artifacts).
  auto workloads = make_workloads(smoke);
  if (!only.empty()) {
    std::erase_if(workloads,
                  [&](const Workload& w) { return w.name != only; });
    if (workloads.empty()) {
      std::fprintf(stderr, "bench_throughput: no workload named %s\n",
                   only.c_str());
      return 2;
    }
  }
  const bool has_idle_heavy =
      std::any_of(workloads.begin(), workloads.end(),
                  [](const Workload& w) { return w.idle_heavy; });
  const unsigned shard_counts[] = {1, 2, 4, 8};
  std::vector<std::vector<Cell>> all_cells;
  bool idle_heavy_3x = false;

  for (const Workload& w : workloads) {
    std::printf("%-14s %-8s %7s %12s %16s %14s %14s %9s\n", w.name.c_str(),
                "engine", "shards", "wall_ms", "sim_ns/sec", "faults/sec",
                "events/sec", "speedup");
    std::vector<Cell> cells;
    cells.push_back(measure(w, AdvanceMode::kTimeStepped, 1, reps));
    for (const unsigned shards : shard_counts) {
      cells.push_back(measure(w, AdvanceMode::kEventDriven, shards, reps));
    }
    const double stepped_rate = cells[0].sim_ns_per_sec;
    for (Cell& c : cells) {
      c.speedup_vs_stepped =
          stepped_rate > 0 ? c.sim_ns_per_sec / stepped_rate : 0;
      std::printf("%-14s %-8s %7u %12.3f %16.0f %14.0f %14.0f %8.2fx\n",
                  w.name.c_str(), c.engine.c_str(), c.shards, c.wall_ms,
                  c.sim_ns_per_sec, c.faults_per_sec, c.events_per_sec,
                  c.speedup_vs_stepped);
      if (w.idle_heavy && c.engine == "event" &&
          c.speedup_vs_stepped >= 3.0) {
        idle_heavy_3x = true;
      }
    }
    // Both modes must agree on the simulated outcome or the comparison is
    // meaningless.
    for (const Cell& c : cells) {
      if (c.sim_ns != cells[0].sim_ns || c.faults != cells[0].faults) {
        std::fprintf(stderr,
                     "bench_throughput: %s %s x%u diverged from stepped "
                     "(sim_ns %llu vs %llu)\n",
                     w.name.c_str(), c.engine.c_str(), c.shards,
                     static_cast<unsigned long long>(c.sim_ns),
                     static_cast<unsigned long long>(cells[0].sim_ns));
        return 1;
      }
    }
    std::printf("\n");
    all_cells.push_back(std::move(cells));
  }

  if (has_idle_heavy) {
    bench::shape_check(idle_heavy_3x,
                       "event engine advances sim time >=3x faster than the "
                       "stepped reference on the idle-heavy workload");
  }

  write_json(out_path, smoke, !only.empty(), workloads, all_cells);
  std::printf("\nwrote %s\n", out_path.c_str());
  // The >=3x claim is only enforced on full runs: smoke cells finish in
  // well under a millisecond, where scheduler noise swamps the ratio,
  // and --only runs that exclude the idle-heavy workload cannot test it.
  return (smoke || !has_idle_heavy || idle_heavy_3x) ? 0 : 1;
}

}  // namespace
}  // namespace uvmsim

int main(int argc, char** argv) { return uvmsim::run_main(argc, argv); }
