// Ablation: observability overhead (the PR's zero-overhead-when-disabled
// contract, in the spirit of the paper's "logging tool more reliable than
// dmesg" — instrumentation must not distort what it measures).
//
// The same workload runs with observability off, metrics only, tracing
// only, and both. The hard claim is on SIMULATED time: the tracer and
// registry only observe, so every mode must report bit-identical kernel
// time and a byte-identical batch log — a 0% (< 1%) sim-time overhead,
// enabled or not. Host wall-clock is reported per mode (median of
// repetitions) to show what the recording itself costs the simulator
// process.
#include <algorithm>
#include <chrono>
#include <sstream>

#include "analysis/log_io.hpp"
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct Mode {
  std::string label;
  ObsConfig obs;
};

struct Row {
  std::string label;
  RunResult result;
  double wall_ms = 0;        // median over kReps
  std::size_t events = 0;    // trace events recorded
  std::size_t metrics = 0;   // counter names registered
  std::string batch_log;     // serialized, for byte comparison
};

constexpr int kReps = 5;

Row run_mode(const Mode& mode, const WorkloadSpec& spec) {
  Row row;
  row.label = mode.label;
  std::vector<double> walls;
  for (int rep = 0; rep < kReps; ++rep) {
    SystemConfig cfg = no_prefetch(presets::scaled_titan_v(64));
    cfg.obs = mode.obs;
    System system(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    auto result = system.run(spec);
    const auto t1 = std::chrono::steady_clock::now();
    walls.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (rep == 0) {
      row.events = system.tracer().size();
      row.metrics = system.metrics().counters().size();
      std::ostringstream log;
      write_batch_log(log, result.log);
      row.batch_log = log.str();
      row.result = std::move(result);
    }
  }
  std::sort(walls.begin(), walls.end());
  row.wall_ms = walls[walls.size() / 2];
  return row;
}

}  // namespace

int main() {
  print_header(
      "Ablation: tracing & metrics overhead",
      "observability only observes: simulated time and the batch log are "
      "bit-identical with tracing/metrics on or off (0% sim-time "
      "overhead, well under the 1% budget)");

  const auto spec = make_stream_triad(1 << 18);
  const std::vector<Mode> modes{
      {"off", {false, false}},
      {"metrics", {false, true}},
      {"trace", {true, false}},
      {"trace+metrics", {true, true}},
  };

  std::vector<Row> rows;
  for (const auto& mode : modes) rows.push_back(run_mode(mode, spec));
  const Row& off = rows.front();

  TablePrinter table({"mode", "kernel(ms)", "batches", "wall(ms)",
                      "wall vs off", "trace events", "counters"});
  for (const auto& row : rows) {
    const double ratio = off.wall_ms > 0 ? row.wall_ms / off.wall_ms : 1.0;
    table.add_row({row.label, fmt(row.result.kernel_time_ns / 1e6, 3),
                   std::to_string(row.result.log.size()),
                   fmt(row.wall_ms, 2), fmt(ratio, 2) + "x",
                   std::to_string(row.events),
                   std::to_string(row.metrics)});
  }
  std::printf("%s\n", table.render().c_str());

  bool sim_identical = true;
  bool log_identical = true;
  for (const auto& row : rows) {
    sim_identical &=
        row.result.kernel_time_ns == off.result.kernel_time_ns &&
        row.result.batch_time_ns == off.result.batch_time_ns;
    log_identical &= row.batch_log == off.batch_log;
  }
  shape_check(sim_identical,
              "simulated kernel/batch time bit-identical across all four "
              "observability modes (sim-time overhead exactly 0%, < 1% "
              "budget)");
  shape_check(log_identical,
              "batch log serializes byte-identically in every mode");
  shape_check(off.events == 0 && off.metrics == 0,
              "disabled mode records nothing (null-handle fast path)");
  shape_check(rows[2].events > 0 && rows[1].metrics > 0,
              "enabled modes actually record (trace events, counters)");
  return (sim_identical && log_identical) ? 0 : 1;
}
