// Figure 6: best fit of batch cost vs data migrated. Batch cost rises
// linearly with the amount of data moved, with per-application slopes and
// high per-application variance.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 6: batch cost vs data migrated (linear best fit)",
               "average batch cost rises linearly with migrated bytes; "
               "slope and variance differ by application");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  TablePrinter table({"app", "slope(us/KB)", "intercept(us)", "r2",
                      "batches", "mean cost(us)", "mean transfer(us)"});
  bool all_positive = true;
  bool management_dominates = true;
  for (const auto& entry : paper_roster()) {
    const auto result = run_once(entry.spec, cfg);
    const auto fit = cost_vs_migration_fit(result.log);
    RunningStats cost, transfer;
    for (const auto& rec : result.log) {
      cost.add(static_cast<double>(rec.duration_ns()) / 1000.0);
      transfer.add(static_cast<double>(rec.phases.transfer_ns) / 1000.0);
    }
    table.add_row({entry.label, fmt(fit.slope, 3), fmt(fit.intercept, 1),
                   fmt(fit.r2, 3), std::to_string(fit.n),
                   fmt(cost.mean(), 1), fmt(transfer.mean(), 1)});
    all_positive &= fit.slope > 0;
    management_dominates &= cost.mean() > 1.5 * transfer.mean();
  }
  std::printf("%s\n", table.render().c_str());

  // Render the scatter for one representative application.
  GemmParams p;
  p.n = 1024;
  const auto result = run_once(make_gemm(p), cfg);
  ScatterPlot plot("data migrated per batch (KB)", "batch time (us)", 72, 20);
  for (const auto& rec : result.log) {
    plot.add(static_cast<double>(rec.counters.bytes_h2d) / 1024.0,
             static_cast<double>(rec.duration_ns()) / 1000.0);
  }
  std::printf("sgemm batches:\n%s\n", plot.render().c_str());

  shape_check(all_positive, "every application fits a positive slope "
                            "(cost grows with migrated data)");
  shape_check(management_dominates,
              "mean batch cost far exceeds mean transfer time in every "
              "application (management, not movement, sets the level)");
  return 0;
}
