// Multi-tenant arbitration ablation: FCFS vs deficit-round-robin vs
// stride on the 64-tenant acceptance scenario (mixed workloads, weights
// cycling {1,2,4}, one batch per grant). FCFS ignores weights, so its
// weight-normalized Jain index collapses; the weighted disciplines hold
// shares near the targets at (near) identical makespan — fairness here is
// a scheduling transform of the same work, not a throughput tax.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "analysis/tenant_report.hpp"
#include "common/stats.hpp"
#include "core/multi_client.hpp"
#include "workloads/tenant_mix.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct Outcome {
  const char* name;
  double makespan_ms = 0;
  double jain = 0;
  double max_err_pct = 0;
  double wait_p50_us = 0;
  double wait_p99_us = 0;
  double wait_max_us = 0;
};

Outcome run_policy(const char* name, TenantSchedPolicy policy) {
  SystemConfig cfg = presets::scaled_titan_v(64);
  cfg.driver.prefetch_enabled = false;
  cfg.driver.big_page_promotion = false;
  cfg.driver.batch_size = 64;
  TenantSchedConfig sched;
  sched.policy = policy;
  sched.drr_quantum_faults = 64;
  MultiClientSystem multi(cfg, make_tenant_matrix(64, {1.0, 2.0, 4.0}, 0, 1),
                          sched);
  const auto result =
      multi.run(make_tenant_roster(64, TenantMix::kMixed, cfg.seed, 32768));
  const TenantReport report = build_tenant_report(result.per_tenant);

  Outcome o;
  o.name = name;
  o.makespan_ms = result.makespan_ns / 1e6;
  o.jain = report.jain_index;
  o.max_err_pct = report.max_abs_share_error * 100.0;
  std::vector<double> waits;
  waits.reserve(report.rows.size());
  for (const auto& row : report.rows) waits.push_back(row.mean_wait_ns);
  o.wait_p50_us = percentile(waits, 0.50) / 1e3;
  o.wait_p99_us = percentile(waits, 0.99) / 1e3;
  o.wait_max_us = report.max_wait_ns / 1e3;
  return o;
}

}  // namespace

int main() {
  print_header("Ablation: multi-tenant arbitration (FCFS vs DRR vs stride)",
               "64 tenants, mixed workloads, weights {1,2,4}: weighted "
               "disciplines hold in-window shares at the weight targets "
               "(Jain -> 1) where FCFS cannot, at comparable makespan");

  std::vector<Outcome> outcomes;
  outcomes.push_back(run_policy("fcfs", TenantSchedPolicy::kFcfs));
  outcomes.push_back(
      run_policy("drr", TenantSchedPolicy::kDeficitRoundRobin));
  outcomes.push_back(run_policy("stride", TenantSchedPolicy::kStride));

  TablePrinter table({"policy", "makespan(ms)", "jain", "max_share_err%",
                      "wait p50(us)", "wait p99(us)", "wait max(us)"});
  for (const Outcome& o : outcomes) {
    table.add_row({o.name, fmt(o.makespan_ms, 2), fmt(o.jain, 4),
                   fmt(o.max_err_pct, 2), fmt(o.wait_p50_us, 2),
                   fmt(o.wait_p99_us, 2), fmt(o.wait_max_us, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  const Outcome& fcfs = outcomes[0];
  const Outcome& drr = outcomes[1];
  const Outcome& stride = outcomes[2];
  shape_check(stride.jain > fcfs.jain && drr.jain > fcfs.jain,
              "weighted disciplines track the weight targets better than "
              "FCFS (higher weight-normalized Jain index)");
  shape_check(stride.jain >= 0.95 && stride.max_err_pct <= 10.0,
              "stride holds the acceptance bar: shares within 10% of "
              "weights, Jain >= 0.95");
  shape_check(stride.makespan_ms < 1.10 * fcfs.makespan_ms,
              "weighted fairness costs <10% makespan (the worker services "
              "the same batches in a different order)");
  return 0;
}
