// Table 2: per-SM fault-source statistics in each batch. Every batch mixes
// a small number of faults from (nearly) every SM.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct PaperRow {
  double avg, stddev, min, max;
};

// The paper's Table 2 values, for side-by-side comparison.
const std::pair<const char*, PaperRow> kPaper[] = {
    {"Regular", {3.06, 0.43, 0.09, 3.20}},
    {"Random", {3.03, 0.52, 0.01, 3.20}},
    {"sgemm", {0.85, 0.60, 0.01, 3.20}},
    {"stream", {0.75, 0.09, 0.05, 1.36}},
    {"cufft", {0.91, 0.13, 0.01, 1.88}},
    {"gauss-seidel", {0.65, 0.45, 0.01, 2.95}},
    {"hpgmg", {0.41, 0.10, 0.01, 2.65}},
};

}  // namespace

int main() {
  print_header("Table 2: per-SM source statistics in each batch",
               "batches combine a few faults from nearly all SMs; synthetic "
               "Regular/Random saturate the 256/80 = 3.2 cap, real apps "
               "stay below ~1 fault/SM on average");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  TablePrinter table({"benchmark", "avg", "stddev", "min", "max",
                      "paper avg", "paper max", "batches"});
  double regular_avg = 0, apps_max_avg = 0;
  double global_max = 0;
  for (const auto& entry : paper_roster()) {
    const auto result = run_once(entry.spec, cfg);
    const auto row = sm_stats(result.log, cfg.gpu.num_sms);
    PaperRow paper{};
    for (const auto& [name, values] : kPaper) {
      if (entry.label == name) paper = values;
    }
    table.add_row({entry.label, fmt(row.avg, 2), fmt(row.stddev, 2),
                   fmt(row.min, 2), fmt(row.max, 2), fmt(paper.avg, 2),
                   fmt(paper.max, 2), std::to_string(row.batches)});
    if (entry.label == "Regular") regular_avg = row.avg;
    if (entry.label != "Regular" && entry.label != "Random") {
      apps_max_avg = std::max(apps_max_avg, row.avg);
    }
    global_max = std::max(global_max, row.max);
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(regular_avg > apps_max_avg,
              "synthetic Regular saturates per-SM fault generation harder "
              "than any real application");
  shape_check(global_max <= 3.2 + 1e-9,
              "no batch exceeds batch_size/num_sms = 256/80 = 3.20 "
              "faults per SM");
  shape_check(apps_max_avg < 2.5,
              "real applications average only a few faults per SM per batch "
              "(model sits ~2x above the paper's 0.41-0.91 band; see "
              "EXPERIMENTS.md)");
  return 0;
}
