// Figure 10: batch time vs to-GPU migration size, colored by the number of
// unique VABlocks in the batch. For the same migration size, more VABlocks
// means higher cost (each VABlock is an independent processing step).
//
// Two sub-experiments:
//  (1) controlled: identical 128-fault batches spread over 1..64 VABlocks,
//      serviced directly through the driver (cold = first touch including
//      DMA-map state init, warm = blocks already initialized);
//  (2) observational: an fft run's batches plotted by VABlock bucket.
#include "bench_util.hpp"
#include "uvm/uvm_driver.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 10: batch time vs migration size by VABlock count",
               "for equal data moved, batches touching more VABlocks cost "
               "more (per-VABlock processing steps)");

  // ---- Controlled spread experiment ------------------------------------
  DriverConfig dcfg;
  dcfg.prefetch_enabled = false;
  dcfg.big_page_promotion = false;
  UvmDriver driver(dcfg, 512ULL << 20, 80);
  driver.managed_alloc(256ULL << 20, "spread", HostInit::single());

  TablePrinter table({"VABlocks", "cold cost(us)", "warm cost(us)",
                      "bytes migrated(KB)"});
  std::vector<double> cold_costs, warm_costs;
  for (const std::uint32_t vablocks : {1u, 4u, 16u, 64u}) {
    // Use a disjoint set of blocks per configuration so every cold call is
    // genuinely first-touch: offset the block ids by a running base.
    static std::uint32_t block_base = 0;
    auto run = [&](std::uint32_t round) {
      std::vector<FaultRecord> batch;
      for (std::uint32_t i = 0; i < 128; ++i) {
        FaultRecord f;
        const std::uint32_t block = block_base + (i % vablocks);
        const std::uint32_t offset = (i / vablocks) + round * 128;
        f.page = static_cast<PageId>(block) * kPagesPerVaBlock + offset;
        f.sm = i % 80;
        f.utlb = f.sm / 2;
        batch.push_back(f);
      }
      return driver.handle_batch(batch, 0).duration_ns();
    };
    const SimTime cold = run(0);
    const SimTime warm = run(1);
    block_base += vablocks;
    table.add_row({std::to_string(vablocks), fmt_us(cold), fmt_us(warm),
                   fmt(128.0 * kPageSize / 1024.0, 0)});
    cold_costs.push_back(static_cast<double>(cold));
    warm_costs.push_back(static_cast<double>(warm));
  }
  std::printf("controlled: 128 migrated pages per batch, varying spread:\n%s\n",
              table.render().c_str());

  // ---- Observational fft scatter ----------------------------------------
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
  const auto result = run_once(make_fft(1 << 22), cfg);
  ScatterPlot plot("data migrated (KB)", "batch time (us)", 72, 18);
  auto bucket = [](std::uint32_t blocks) -> unsigned {
    if (blocks <= 2) return 0;
    if (blocks <= 4) return 1;
    if (blocks <= 8) return 2;
    return 3;
  };
  for (const auto& rec : result.log) {
    plot.add(static_cast<double>(rec.counters.bytes_h2d) / 1024.0,
             static_cast<double>(rec.duration_ns()) / 1000.0,
             bucket(rec.counters.vablocks_touched));
  }
  std::printf("fft batches (glyph by VABlocks: '.' <=2, 'o' 3-4, '+' 5-8, "
              "'x' >8):\n%s\n",
              plot.render().c_str());

  const bool cold_monotone = cold_costs[0] < cold_costs[1] &&
                             cold_costs[1] < cold_costs[2] &&
                             cold_costs[2] < cold_costs[3];
  const bool warm_monotone = warm_costs[0] < warm_costs[1] &&
                             warm_costs[1] < warm_costs[2] &&
                             warm_costs[2] < warm_costs[3];
  shape_check(cold_monotone,
              "cold batches: same bytes, strictly higher cost with more "
              "VABlocks");
  shape_check(warm_monotone,
              "warm batches: the per-VABlock step alone reproduces the "
              "trend without first-touch costs");
  shape_check(warm_costs[3] < cold_costs[3],
              "first-touch (DMA/unmap) batches sit above warm ones — the "
              "extra variance source in the figure");
  return 0;
}
