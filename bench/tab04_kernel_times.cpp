// Table 4: aggregate batch and kernel execution times for Gauss-Seidel
// and HPGMG under modest oversubscription, with prefetching on and off.
// Paper: prefetching improves kernel time 3.39x (Gauss-Seidel) and 2.72x
// (HPGMG); batch time is always below kernel time.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct CaseResult {
  RunResult off;
  RunResult on;
};

CaseResult run_case(const WorkloadSpec& spec, std::uint64_t gpu_mb) {
  CaseResult out;
  out.off = run_once(spec, no_prefetch(presets::scaled_titan_v(gpu_mb)));
  out.on = run_once(spec, presets::scaled_titan_v(gpu_mb));
  return out;
}

}  // namespace

int main() {
  print_header("Table 4: batch and kernel times, prefetch off/on "
               "(oversubscribed)",
               "prefetching speeds up oversubscribed kernels severalfold "
               "(paper: 3.39x gauss-seidel, 2.72x hpgmg); batch time < "
               "kernel time in every configuration");

  GaussSeidelParams gs;
  gs.nx = 2048;
  gs.ny = 1408;  // 44 MB working set vs 38 MB GPU (~116%)
  gs.sweeps = 2;
  const auto gs_result = run_case(make_gauss_seidel(gs), 38);

  HpgmgParams hp;
  hp.fine_elements_log2 = 21;
  hp.levels = 4;
  hp.vcycles = 2;  // ~40 MB vs 32 MB GPU (~125%)
  const auto hp_result = run_case(make_hpgmg(hp), 32);

  TablePrinter table({"benchmark", "no-pf batch(ms)", "no-pf kernel(ms)",
                      "pf batch(ms)", "pf kernel(ms)", "kernel speedup",
                      "paper speedup"});
  const auto row = [&](const std::string& name, const CaseResult& r,
                       double paper) {
    const double speedup = static_cast<double>(r.off.kernel_time_ns) /
                           static_cast<double>(r.on.kernel_time_ns);
    table.add_row({name, fmt(r.off.batch_time_ns / 1e6, 2),
                   fmt(r.off.kernel_time_ns / 1e6, 2),
                   fmt(r.on.batch_time_ns / 1e6, 2),
                   fmt(r.on.kernel_time_ns / 1e6, 2),
                   fmt(speedup, 2) + "x", fmt(paper, 2) + "x"});
    return speedup;
  };
  const double gs_speedup = row("Gauss-Seidel", gs_result, 3.39);
  const double hp_speedup = row("HPGMG", hp_result, 2.72);
  std::printf("%s\n", table.render().c_str());

  shape_check(gs_speedup > 1.5 && hp_speedup > 1.5,
              "prefetching delivers a multi-fold kernel speedup under "
              "modest oversubscription");
  shape_check(gs_speedup >= 2.0 && gs_speedup <= 3.0 * 3.39 &&
                  hp_speedup >= 2.0,
              "speedups are multi-fold, the same direction and order as "
              "the paper's 3.39x / 2.72x (the 4 KB no-prefetch baseline "
              "is relatively slower in the model; see EXPERIMENTS.md)");
  const bool batch_below_kernel =
      gs_result.off.batch_time_ns < gs_result.off.kernel_time_ns &&
      gs_result.on.batch_time_ns < gs_result.on.kernel_time_ns &&
      hp_result.off.batch_time_ns < hp_result.off.kernel_time_ns &&
      hp_result.on.batch_time_ns < hp_result.on.kernel_time_ns;
  shape_check(batch_below_kernel,
              "aggregate batch time is below kernel time in all four "
              "configurations (interrupts + in-memory GPU work make up "
              "the difference)");
  return 0;
}
