// Component microbenchmarks (google-benchmark): the substrate data
// structures and models on the driver's hot path. Not a paper figure —
// supporting evidence for where per-batch time goes.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gpu/fault_buffer.hpp"
#include "hostos/dma.hpp"
#include "hostos/page_table.hpp"
#include "hostos/radix_tree.hpp"
#include "hostos/unmap.hpp"
#include "interconnect/copy_engine.hpp"
#include "uvm/dedup.hpp"
#include "uvm/prefetcher.hpp"

namespace uvmsim {
namespace {

void BM_RadixInsertDense(benchmark::State& state) {
  for (auto _ : state) {
    RadixTree tree;
    for (std::uint64_t k = 0; k < static_cast<std::uint64_t>(state.range(0));
         ++k) {
      benchmark::DoNotOptimize(tree.insert(k, k));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixInsertDense)->Arg(512)->Arg(4096)->Arg(32768);

void BM_RadixInsertSparse(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys(state.range(0));
  for (auto& k : keys) k = rng.next() >> 20;
  for (auto _ : state) {
    RadixTree tree;
    for (const auto k : keys) benchmark::DoNotOptimize(tree.insert(k, k));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RadixInsertSparse)->Arg(512)->Arg(4096);

void BM_RadixLookup(benchmark::State& state) {
  RadixTree tree;
  for (std::uint64_t k = 0; k < 32768; ++k) tree.insert(k * 7, k);
  std::uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.lookup((key++ % 32768) * 7));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RadixLookup);

void BM_PageTableMapUnmap(benchmark::State& state) {
  PageTable pt;
  PageId vpn = 0;
  for (auto _ : state) {
    pt.map(vpn, vpn);
    benchmark::DoNotOptimize(pt.unmap(vpn));
    ++vpn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableMapUnmap);

void BM_FaultBufferPushDrain(benchmark::State& state) {
  FaultBuffer buffer(4096);
  FaultRecord fault;
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) {
      fault.page = static_cast<PageId>(i);
      buffer.push(fault);
    }
    benchmark::DoNotOptimize(buffer.drain(256));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FaultBufferPushDrain);

void BM_DedupBatch(benchmark::State& state) {
  Xoshiro256 rng(2);
  std::vector<FaultRecord> batch(state.range(0));
  for (auto& f : batch) {
    f.page = rng.uniform(64);  // heavy duplication, like real batches
    f.utlb = static_cast<std::uint32_t>(rng.uniform(40));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup_faults(batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DedupBatch)->Arg(256)->Arg(1024)->Arg(6144);

void BM_PrefetcherCompute(benchmark::State& state) {
  TreePrefetcher prefetcher;
  TreePrefetcher::PageMask resident, faulted;
  Xoshiro256 rng(3);
  for (int i = 0; i < 64; ++i) resident.set(rng.uniform(kPagesPerVaBlock));
  for (int i = 0; i < 32; ++i) faulted.set(rng.uniform(kPagesPerVaBlock));
  for (auto _ : state) {
    benchmark::DoNotOptimize(prefetcher.compute(resident, faulted));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrefetcherCompute);

void BM_CopyCoalescing(benchmark::State& state) {
  PcieLink link;
  CopyEngine copy(link);
  Xoshiro256 rng(4);
  std::vector<PageId> pages(state.range(0));
  for (auto& p : pages) p = rng.uniform(1 << 20);
  for (auto _ : state) {
    auto copy_pages = pages;
    benchmark::DoNotOptimize(
        copy.copy_pages(std::move(copy_pages), CopyDirection::kHostToDevice));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CopyCoalescing)->Arg(256)->Arg(4096);

void BM_UnmapCostModel(benchmark::State& state) {
  UnmapCostModel model;
  std::uint32_t pages = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(pages++ % 512, 0xFFFF));
  }
}
BENCHMARK(BM_UnmapCostModel);

void BM_DmaMapBlock(benchmark::State& state) {
  for (auto _ : state) {
    DmaMapper dma;
    benchmark::DoNotOptimize(dma.map_range(0, kPagesPerVaBlock));
  }
  state.SetItemsProcessed(state.iterations() * kPagesPerVaBlock);
}
BENCHMARK(BM_DmaMapBlock);

}  // namespace
}  // namespace uvmsim

BENCHMARK_MAIN();
