// Section 6 improvement proposals, evaluated:
//  (1) adaptive batch sizing driven by the observed duplicate rate
//      ("A simple improvement could be to tune batch size based on the
//       number of duplicate faults received");
//  (2) asynchronous/preemptive host-OS operations
//      ("performing these operations asynchronously and preemptively may
//       be preferable when an application shifts to GPU compute");
//  (3) eviction-policy choice (LRU vs FIFO) under oversubscription.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Ablation: §6 driver improvements",
               "async host ops remove unmap/DMA from the fault path; "
               "adaptive batch sizing tracks the duplicate rate; LRU vs "
               "FIFO matters little when access is a dense sweep");

  // ---- (1) + (2): stock vs adaptive vs async vs both -------------------
  HpgmgParams hp;
  hp.fine_elements_log2 = 20;
  hp.levels = 4;
  hp.vcycles = 1;
  const auto spec = make_hpgmg(hp);

  struct Variant {
    const char* label;
    bool adaptive;
    bool async;
  };
  const Variant variants[] = {
      {"stock driver", false, false},
      {"adaptive batch size", true, false},
      {"async host ops", false, true},
      {"adaptive + async", true, true},
  };

  TablePrinter table({"variant", "kernel(ms)", "batches",
                      "final batch size", "async bg time(ms)"});
  double stock_ms = 0, async_ms = 0;
  for (const auto& v : variants) {
    SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
    cfg.driver.adaptive_batch_size = v.adaptive;
    cfg.driver.async_host_ops = v.async;
    System system(cfg);
    const auto result = system.run(spec);
    table.add_row({v.label, fmt(result.kernel_time_ns / 1e6, 2),
                   std::to_string(result.log.size()),
                   std::to_string(system.driver().effective_batch_size()),
                   fmt(system.driver().async_background_time() / 1e6, 2)});
    if (std::string(v.label) == "stock driver") {
      stock_ms = result.kernel_time_ns / 1e6;
    }
    if (std::string(v.label) == "async host ops") {
      async_ms = result.kernel_time_ns / 1e6;
    }
  }
  std::printf("hpgmg (multithreaded host init, no prefetch):\n%s\n",
              table.render().c_str());

  // ---- (3): eviction policy under oversubscription ----------------------
  TablePrinter evict_table({"policy", "kernel(ms)", "evictions"});
  double lru_ms = 0, fifo_ms = 0;
  for (const EvictPolicy policy : {EvictPolicy::kLru, EvictPolicy::kFifo}) {
    SystemConfig cfg = presets::scaled_titan_v(24);
    cfg.driver.evict_policy = policy;
    System system(cfg);
    const auto result = system.run(make_stream_triad(2 << 20, 2));
    evict_table.add_row({policy == EvictPolicy::kLru ? "LRU" : "FIFO",
                         fmt(result.kernel_time_ns / 1e6, 2),
                         std::to_string(result.evictions)});
    (policy == EvictPolicy::kLru ? lru_ms : fifo_ms) =
        result.kernel_time_ns / 1e6;
  }
  std::printf("stream, 2 sweeps, 200%% oversubscription:\n%s\n",
              evict_table.render().c_str());

  shape_check(async_ms < stock_ms,
              "moving unmap/DMA off the fault path improves end-to-end "
              "time (the §6 asynchronous-host-ops proposal)");
  shape_check(std::abs(lru_ms - fifo_ms) / stock_ms < 2.0 &&
                  lru_ms > 0 && fifo_ms > 0,
              "LRU and FIFO are close for dense sweeps (the paper: LRU "
              "degenerates to earliest-allocated anyway)");
  return 0;
}
