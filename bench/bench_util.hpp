// Shared helpers for the figure/table reproduction harness.
//
// Every binary in bench/ regenerates one table or figure from the paper:
// it prints a header naming the experiment and the paper's claim, the
// data series (as a fixed-width table and/or ASCII scatter), and a SHAPE
// CHECK section stating whether the reproduced trend matches.
#pragma once

#include <cstdio>
#include <string>

#include "analysis/ascii_plot.hpp"
#include "analysis/summary.hpp"
#include "analysis/table.hpp"
#include "core/explicit_baseline.hpp"
#include "core/system.hpp"
#include "workloads/workload.hpp"

namespace uvmsim::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================="
              "=========\n\n");
}

inline void shape_check(bool ok, const std::string& statement) {
  std::printf("SHAPE CHECK [%s] %s\n", ok ? "ok" : "MISMATCH",
              statement.c_str());
}

/// The seven-workload roster of Tables 2 and 3, sized to run in seconds.
struct RosterEntry {
  std::string label;
  WorkloadSpec spec;
};

inline std::vector<RosterEntry> paper_roster() {
  std::vector<RosterEntry> roster;
  roster.push_back({"Regular", make_regular(96ULL << 20, 4, 320, 2)});
  roster.push_back({"Random", make_random(192ULL << 20, 0x5eed, 4, 320, 64)});
  {
    GemmParams p;
    p.n = 1024;
    roster.push_back({"sgemm", make_gemm(p)});
  }
  roster.push_back({"stream", make_stream_triad(1 << 20)});
  roster.push_back({"cufft", make_fft(1 << 22)});
  {
    GaussSeidelParams p;
    p.nx = 2048;
    p.ny = 1024;
    roster.push_back({"gauss-seidel", make_gauss_seidel(p)});
  }
  {
    HpgmgParams p;
    p.fine_elements_log2 = 20;
    p.levels = 4;
    p.vcycles = 1;
    roster.push_back({"hpgmg", make_hpgmg(p)});
  }
  return roster;
}

inline RunResult run_once(const WorkloadSpec& spec, SystemConfig config) {
  System system(config);
  return system.run(spec);
}

inline SystemConfig no_prefetch(SystemConfig config) {
  config.driver.prefetch_enabled = false;
  config.driver.big_page_promotion = false;
  return config;
}

}  // namespace uvmsim::bench
