// Figure 13: stream under oversubscription shows multiple cost "levels"
// for the same eviction count. The upper level pays unmap_mapping_range
// for first-touch VABlocks; the lower level re-pages blocks whose CPU
// mappings were already removed (eviction does not remap).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 13: eviction cost levels (stream)",
               "batches with equal eviction counts split into levels; the "
               "lower level has near-zero CPU-unmap cost (re-page-in of "
               "already-unmapped VABlocks)");

  // 3 x 16 MB arrays against 24 MB GPU, two passes so evicted blocks are
  // re-paged-in (second pass hits the lower level).
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(24));
  const auto result = run_once(make_stream_triad(2 << 20, 2), cfg);

  ScatterPlot plot("batch id", "batch time (us)", 72, 20);
  RunningStats with_unmap, without_unmap;
  std::uint64_t evictions = 0;
  for (const auto& rec : result.log) {
    if (rec.counters.evictions == 0) continue;
    evictions += rec.counters.evictions;
    const double us = static_cast<double>(rec.duration_ns()) / 1000.0;
    if (rec.counters.pages_unmapped > 0) {
      with_unmap.add(us);
      plot.add(rec.id, us, 4);  // '*' upper level
    } else {
      without_unmap.add(us);
      plot.add(rec.id, us, 0);  // '.' lower level
    }
  }
  std::printf("eviction batches only ('*' = pays unmap, '.' = no unmap):\n%s\n",
              plot.render().c_str());

  TablePrinter table(
      {"level", "batches", "mean cost(us)", "mean unmap(us)"});
  table.add_row({"first-touch (unmap)", std::to_string(with_unmap.count()),
                 fmt(with_unmap.mean(), 1), "-"});
  table.add_row({"re-page-in (no unmap)",
                 std::to_string(without_unmap.count()),
                 fmt(without_unmap.mean(), 1), "0.0"});
  std::printf("%s\ntotal evictions: %llu\n\n", table.render().c_str(),
              static_cast<unsigned long long>(evictions));

  shape_check(evictions > 0, "the run evicted");
  shape_check(with_unmap.count() > 0 && without_unmap.count() > 0,
              "both levels are populated (first-touch and re-page-in "
              "eviction batches)");
  shape_check(without_unmap.mean() < with_unmap.mean(),
              "the no-unmap level sits below the unmap level (paper: "
              "lower level always has near-zero unmapping cost)");
  return 0;
}
