// Figure 17: HPGMG case study with ~25% oversubscription and prefetching:
// segmented prefetch/eviction activity through V-cycle phases, and the
// same LRU earliest-allocated eviction signature as Gauss-Seidel.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 17: HPGMG, ~25% oversubscription, prefetch on",
               "fault activity is segmented by V-cycle phases; intensive "
               "prefetching coincides with eviction waves; LRU evicts the "
               "earliest allocations first");

  // ~40 MB of level arrays against a 32 MB GPU (~125%).
  HpgmgParams p;
  p.fine_elements_log2 = 21;
  p.levels = 4;
  p.vcycles = 2;
  SystemConfig cfg = presets::scaled_titan_v(32);
  const auto result = run_once(make_hpgmg(p), cfg);

  ScatterPlot a("batch id", "migrated (KB)", 72, 14);
  for (const auto& rec : result.log) {
    a.add(rec.id, static_cast<double>(rec.counters.bytes_h2d) / 1024.0,
          rec.counters.pages_prefetched > 0 ? 4 : 0);
  }
  std::printf("(a) migration per batch ('*' = prefetching):\n%s\n",
              a.render().c_str());

  ScatterPlot c("batch id", "VABlock id", 72, 18);
  std::vector<VaBlockId> eviction_order;
  for (const auto& rec : result.log) {
    for (const VaBlockId blk : rec.first_touch_blocks) c.add(rec.id, blk, 0);
    for (const VaBlockId blk : rec.evicted_blocks) {
      c.add(rec.id, blk, 5);
      eviction_order.push_back(blk);
    }
  }
  std::printf("(c) fault behaviour ('.' = first GPU touch, '#' = "
              "evicted):\n%s\n",
              c.render().c_str());

  // Segmentation: eviction activity split into waves — measure how many
  // contiguous runs of eviction batches exist.
  std::uint32_t waves = 0;
  bool in_wave = false;
  for (const auto& rec : result.log) {
    const bool evicting = rec.counters.evictions > 0;
    if (evicting && !in_wave) ++waves;
    in_wave = evicting;
  }
  std::printf("eviction waves (contiguous runs of evicting batches): %u\n",
              waves);

  bool lru_like = false;
  if (eviction_order.size() >= 8) {
    const std::size_t quarter = eviction_order.size() / 4;
    RunningStats early, late;
    for (std::size_t i = 0; i < eviction_order.size(); ++i) {
      (i < quarter ? early : late).add(static_cast<double>(eviction_order[i]));
    }
    lru_like = early.mean() < late.mean();
    std::printf("mean evicted-block id: first quarter %.1f vs rest %.1f\n\n",
                early.mean(), late.mean());
  }

  shape_check(!eviction_order.empty(), "oversubscription caused evictions");
  shape_check(waves >= 2,
              "eviction activity arrives in multiple waves (V-cycle "
              "segments), not one continuous block");
  shape_check(lru_like,
              "the first eviction wave targets the earliest-allocated "
              "blocks (LRU degenerating to allocation order)");
  return 0;
}
