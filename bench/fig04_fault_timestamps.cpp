// Figure 4: real-time timestamps of fault arrival at the GPU fault buffer.
// Faults from one generation window cluster tightly; batch servicing
// separates the clusters.
//
// This bench drives the GPU engine and driver directly (instead of the
// System facade) to capture per-fault records, exactly like the authors'
// per-fault instrumented driver build.
#include "bench_util.hpp"
#include "gpu/gpu_engine.hpp"
#include "uvm/uvm_driver.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 4: fault arrival timestamps",
               "faults of a window arrive in rapid succession (tight "
               "vertical clusters == one batch); servicing time separates "
               "clusters");

  SystemConfig cfg = no_prefetch(presets::titan_v());
  UvmDriver driver(cfg.driver, cfg.gpu.memory_bytes, cfg.gpu.num_sms,
                   cfg.pcie);
  GpuEngine gpu(cfg.gpu, cfg.seed);

  const auto spec = make_vecadd_paged();
  for (const auto& alloc : spec.allocs) {
    driver.managed_alloc(alloc.bytes, alloc.name, alloc.init);
  }
  gpu.launch(spec.kernel);

  struct Sample {
    std::uint32_t batch;
    std::uint64_t index;
    SimTime arrival;
  };
  std::vector<Sample> samples;

  SimTime now = 0;
  gpu.generate(now, driver);
  std::uint32_t batch_id = 0;
  std::uint64_t fault_index = 0;
  while (!gpu.all_done() || !gpu.fault_buffer().empty()) {
    if (gpu.fault_buffer().empty()) {
      gpu.force_token_refill();
      gpu.on_replay();
      gpu.generate(now, driver);
      if (gpu.fault_buffer().empty()) break;
    }
    now += cfg.pcie.interrupt_latency_ns + cfg.driver.wakeup_ns;
    while (!gpu.fault_buffer().empty()) {
      const auto raw = gpu.fault_buffer().drain(cfg.driver.batch_size);
      for (const auto& f : raw) {
        samples.push_back({batch_id, fault_index++, f.timestamp});
      }
      const auto& rec = driver.handle_batch(raw, now);
      now = rec.end_ns;
      gpu.fault_buffer().flush();
      gpu.on_replay();
      gpu.generate(now, driver);
      ++batch_id;
    }
  }

  ScatterPlot plot("fault index", "arrival time (us)", 72, 22);
  for (const auto& s : samples) {
    plot.add(static_cast<double>(s.index), s.arrival / 1000.0, s.batch % 10);
  }
  std::printf("%s\n", plot.render().c_str());
  std::printf("(glyph = batch id mod 10; each horizontal band of equal "
              "glyphs is one window's tight arrival cluster)\n\n");

  // Quantify clustering: intra-window arrival spread vs inter-batch gap.
  double max_intra = 0;
  double min_inter = 1e18;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double gap = static_cast<double>(samples[i].arrival) -
                       static_cast<double>(samples[i - 1].arrival);
    if (samples[i].batch == samples[i - 1].batch) {
      max_intra = std::max(max_intra, gap);
    } else if (gap > 0) {
      min_inter = std::min(min_inter, gap);
    }
  }
  std::printf("max intra-batch arrival gap: %.2f us\n", max_intra / 1000.0);
  std::printf("min inter-batch arrival gap: %.2f us\n", min_inter / 1000.0);
  shape_check(max_intra < min_inter,
              "faults within a window cluster tighter than the servicing "
              "gap between batches");
  shape_check(samples.size() >= 250, "captured the full fault series");
  return 0;
}
