// Table 3: VABlock source statistics in a batch. The fault spread over
// 2 MB VABlocks is highly application-dependent and highly variable —
// the reason naive per-VABlock driver parallelization would be imbalanced.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct PaperRow {
  double blocks, faults, stddev;
  std::uint32_t min, max;
};

const std::pair<const char*, PaperRow> kPaper[] = {
    {"Regular", {41.27, 5.93, 5.10, 1, 83}},
    {"Random", {233.09, 1.04, 0.20, 1, 6}},
    {"sgemm", {6.96, 9.81, 16.58, 1, 128}},
    {"stream", {3.93, 15.37, 8.17, 1, 72}},
    {"cufft", {25.14, 2.89, 2.22, 1, 129}},
    {"gauss-seidel", {2.31, 22.44, 27.96, 1, 208}},
    {"hpgmg", {2.39, 13.62, 15.72, 1, 212}},
};

}  // namespace

int main() {
  print_header("Table 3: VABlock source statistics in a batch",
               "Random spreads ~1 fault over hundreds of VABlocks; dense "
               "sweeps (gauss-seidel, hpgmg, stream) concentrate many "
               "faults in a handful; variance is everywhere large");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  TablePrinter table({"benchmark", "VABlk/batch", "faults/VABlk", "stddev",
                      "min", "max", "paper VABlk", "paper f/VABlk"});
  double random_blocks = 0, stream_blocks = 0, gs_blocks = 0;
  double random_faults = 0, gs_faults = 0;
  for (const auto& entry : paper_roster()) {
    const auto result = run_once(entry.spec, cfg);
    const auto row = vablock_stats(result.log);
    PaperRow paper{};
    for (const auto& [name, values] : kPaper) {
      if (entry.label == name) paper = values;
    }
    table.add_row({entry.label, fmt(row.vablocks_per_batch, 2),
                   fmt(row.faults_per_vablock, 2), fmt(row.stddev, 2),
                   std::to_string(row.min), std::to_string(row.max),
                   fmt(paper.blocks, 2), fmt(paper.faults, 2)});
    if (entry.label == "Random") {
      random_blocks = row.vablocks_per_batch;
      random_faults = row.faults_per_vablock;
    }
    if (entry.label == "stream") stream_blocks = row.vablocks_per_batch;
    if (entry.label == "gauss-seidel") {
      gs_blocks = row.vablocks_per_batch;
      gs_faults = row.faults_per_vablock;
    }
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(random_blocks > 8 * stream_blocks,
              "Random spreads faults over far more VABlocks per batch than "
              "streaming access");
  shape_check(random_faults < 3.0,
              "Random carries almost no per-VABlock locality (~1 fault "
              "per block in the paper; <3 here)");
  shape_check(gs_blocks < random_blocks / 4 &&
                  gs_faults > 3.0 * random_faults,
              "the dense stencil sweep concentrates several-fold more "
              "faults into far fewer VABlocks than Random");
  return 0;
}
