// Figure 3: faults of the paged vector addition as a relative series,
// separated by batches. Establishes the 56-fault µTLB limit and the
// reads-before-writes scoreboard ordering.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 3: vector-addition faults by batch",
               "first batch holds exactly 56 faults (uTLB cap); writes to c "
               "never precede their statement's reads; later batches are "
               "small (<<56) due to SM fault-rate throttling");

  SystemConfig cfg = no_prefetch(presets::titan_v());
  System system(cfg);
  const auto spec = make_vecadd_paged();
  const auto result = system.run(spec);

  TablePrinter table(
      {"batch", "faults", "A reads", "B reads", "C writes", "dur(us)"});
  bool writes_after_reads = true;
  std::uint64_t reads_done = 0;
  bool first_write_seen = false;
  for (const auto& rec : result.log) {
    std::uint32_t a = 0, b = 0, c = 0;
    for (const auto& [block, faults] : rec.vablock_faults) {
      if (block == 0) a += faults;
      if (block == 1) b += faults;
      if (block == 2) c += faults;
    }
    if (c > 0 && !first_write_seen) {
      first_write_seen = true;
      writes_after_reads = reads_done >= 64;  // statement 0's reads
    }
    reads_done += a + b;
    table.add_row({std::to_string(rec.id),
                   std::to_string(rec.counters.raw_faults), std::to_string(a),
                   std::to_string(b), std::to_string(c),
                   fmt_us(rec.duration_ns())});
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(result.log.front().counters.raw_faults == 56,
              "first batch contains exactly 56 faults (uTLB outstanding cap)");
  shape_check(writes_after_reads,
              "no write fault before all 64 prerequisite reads (Listing 2 "
              "scoreboard stall)");
  std::size_t small_batches = 0;
  for (std::size_t i = 1; i < result.log.size(); ++i) {
    if (result.log[i].counters.raw_faults < 56) ++small_batches;
  }
  shape_check(small_batches >= result.log.size() / 2,
              "post-replay batches are far below the 56-entry cap "
              "(rate-throttling)");
  return 0;
}
