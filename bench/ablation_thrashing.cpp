// Ablation: thrashing detection and graceful degradation (§5.1, Figs
// 12/15 regime; mitigation modeled on nvidia-uvm's perf_thrashing).
//
// A sparse uniform-random workload over a 2x-oversubscribed GPU is the
// pathological eviction ping-pong: every fault batch migrates whole
// VABlocks that are evicted again before their next (sparse) access.
// Detection plus the PIN mitigation replaces the ping-pong with remote
// (DMA) access for the thrashing blocks; THROTTLE keeps migrating but
// shields thrashing blocks from eviction and widens the service window.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct Row {
  std::string label;
  RunResult result;
};

Row run_mode(const std::string& label, ThrashMitigation mitigation,
             bool detect) {
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(8));
  cfg.driver.thrash.enabled = detect;
  cfg.driver.thrash.mitigation = mitigation;
  // 16 MB of pages accessed uniformly at random from an 8 MB GPU.
  return {label, run_once(make_random(16ULL << 20, 0x5eed), cfg)};
}

}  // namespace

int main() {
  print_header("Ablation: thrashing detection and graceful degradation",
               "under sparse oversubscribed access, eviction ping-pong "
               "dominates; pin+remote-map removes it (fewer evictions, "
               "less data moved, lower end-to-end time)");

  const Row off = run_mode("off", ThrashMitigation::kNone, false);
  const Row detect = run_mode("detect only", ThrashMitigation::kNone, true);
  const Row pin = run_mode("pin", ThrashMitigation::kPin, true);
  const Row throttle =
      run_mode("throttle", ThrashMitigation::kThrottle, true);

  TablePrinter table({"mitigation", "kernel(ms)", "batches", "evictions",
                      "h2d(MB)", "remote", "pins", "throttles"});
  for (const Row* row : {&off, &detect, &pin, &throttle}) {
    const auto& r = row->result;
    table.add_row({row->label, fmt(r.kernel_time_ns / 1e6, 1),
                   std::to_string(r.log.size()),
                   std::to_string(r.evictions),
                   fmt(static_cast<double>(r.bytes_h2d) / (1 << 20), 1),
                   std::to_string(r.remote_accesses),
                   std::to_string(r.thrash_pins),
                   std::to_string(r.thrash_throttles)});
  }
  std::printf("%s\n", table.render().c_str());

  const auto robust = robustness_totals(pin.result.log);
  std::printf("pin run: %llu thrash pins, %.3f ms backoff, %.3f ms "
              "throttle delay\n\n",
              static_cast<unsigned long long>(robust.thrash_pins),
              static_cast<double>(robust.backoff_ns) / 1e6,
              static_cast<double>(robust.throttle_ns) / 1e6);

  shape_check(off.result.evictions >
                  10 * (16ULL << 20) / (2ULL << 20),
              "the unmitigated run ping-pongs (evictions far exceed the "
              "working-set block count)");
  shape_check(detect.result.kernel_time_ns == off.result.kernel_time_ns &&
                  detect.result.evictions == off.result.evictions,
              "detection alone (mitigation none) changes nothing");
  shape_check(pin.result.thrash_pins > 0,
              "the detector classified blocks as thrashing and pinned them");
  shape_check(pin.result.evictions * 5 < off.result.evictions,
              "pin mitigation cuts evictions by >5x");
  shape_check(pin.result.bytes_h2d * 5 < off.result.bytes_h2d,
              "pin mitigation cuts migrated data by >5x");
  shape_check(pin.result.kernel_time_ns < off.result.kernel_time_ns,
              "pin mitigation reduces end-to-end time");
  shape_check(throttle.result.thrash_throttles > 0,
              "throttle mitigation widens the service window for "
              "thrashing blocks");
  return 0;
}
