// Ablation: the fatal-fault recovery ladder.
//
// The same error-prone run, three ways: (1) a clean baseline, (2) the
// transient injector alone — retry exhaustion abandons service blocks,
// (3) fatal classes armed WITH the recovery ladder — exhausted copies
// escalate to channel resets instead of aborting, double-bit ECC and
// poison retire pages to host frames, and wedged buffers clear through
// the watchdog. The run pays recovery time (resets, salvage writeback,
// re-faulting) to keep every page serviceable; the table shows where
// that time goes and what it buys (aborts -> 0 on the CE path).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

struct Row {
  std::string label;
  RunResult result;
};

SystemConfig injected(SystemConfig cfg) {
  auto& inj = cfg.driver.inject;
  inj.enabled = true;
  inj.seed = 42;
  inj.transfer_error_prob = 0.3;
  cfg.driver.retry.max_attempts = 2;
  return cfg;
}

SystemConfig with_ladder(SystemConfig cfg) {
  auto& inj = cfg.driver.inject;
  inj.ecc_double_bit_prob = 0.005;
  inj.poison_prob = 0.005;
  inj.ce_permanent_prob = 1.0;  // every exhaustion is a dead channel
  inj.wedge_prob = 0.02;
  inj.wedge_gpu_reset_frac = 0.25;
  auto& rec = cfg.driver.recovery;
  rec.enabled = true;
  rec.watchdog_stuck_wakeups = 2;
  return cfg;
}

Row run_mode(const std::string& label, const SystemConfig& cfg) {
  // 16 MB random over an 8 MB GPU: oversubscribed, eviction-heavy — the
  // regime where an abandoned block or a lost page copy would surface.
  return {label, run_once(make_random(16ULL << 20, 0x5eed), cfg)};
}

}  // namespace

int main() {
  const SystemConfig base = no_prefetch(presets::scaled_titan_v(8));
  const Row clean = run_mode("clean", base);
  const Row transient = run_mode("transient, no ladder", injected(base));
  const Row ladder = run_mode("fatal + ladder", with_ladder(injected(base)));

  print_header("Ablation: fatal-fault containment and the recovery ladder",
               "transient-only injection abandons blocks on retry "
               "exhaustion; the ladder converts those into channel resets "
               "and contains fatal faults by retiring pages, at the cost "
               "of recovery time");

  TablePrinter table({"mode", "kernel(ms)", "aborts", "cancelled",
                      "pg_retired", "ch_resets", "gpu_resets",
                      "recovery(ms)"});
  for (const Row* row : {&clean, &transient, &ladder}) {
    const auto& r = row->result;
    const auto rec = recovery_totals(r.log);
    table.add_row({row->label, fmt(r.kernel_time_ns / 1e6, 1),
                   std::to_string(r.service_aborts),
                   std::to_string(rec.faults_cancelled),
                   std::to_string(rec.pages_retired),
                   std::to_string(rec.channel_resets),
                   std::to_string(rec.gpu_resets),
                   fmt(rec.recovery_ns / 1e6, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "ladder run: %llu ECC + %llu poison injections -> %llu pages "
      "(%llu chunks) retired; %llu wedges cleared via watchdog "
      "(%llu stuck wakeups)\n",
      static_cast<unsigned long long>(ladder.result.injected_ecc_faults),
      static_cast<unsigned long long>(ladder.result.injected_poison_faults),
      static_cast<unsigned long long>(ladder.result.pages_retired),
      static_cast<unsigned long long>(ladder.result.chunks_retired),
      static_cast<unsigned long long>(ladder.result.injected_wedges),
      static_cast<unsigned long long>(ladder.result.watchdog_stuck_wakeups));
  return 0;
}
