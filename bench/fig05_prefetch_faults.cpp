// Figure 5: a single warp can generate faults up to the batch-size limit
// using prescriptive prefetching (bypassing the scoreboard, the 56-entry
// µTLB cap, and the SM fault-rate throttle). Faults beyond the batch size
// are dropped by the driver's pre-replay flush.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 5: prefetch-driven fault generation",
               "one warp fills a 256-fault batch via prefetch.global.L2; "
               "overflow faults are dropped by the driver");

  SystemConfig cfg = no_prefetch(presets::titan_v());
  System system(cfg);
  const auto spec = make_vecadd_prefetch(128);  // 3 x 128 = 384 prefetches
  const auto result = system.run(spec);

  TablePrinter table({"batch", "raw faults", "prefetch faults", "migrated",
                      "populated"});
  for (std::size_t i = 0; i < std::min<std::size_t>(result.log.size(), 12);
       ++i) {
    const auto& rec = result.log[i];
    table.add_row({std::to_string(rec.id),
                   std::to_string(rec.counters.raw_faults),
                   std::to_string(rec.counters.prefetch_faults),
                   std::to_string(rec.counters.pages_migrated),
                   std::to_string(rec.counters.pages_populated)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("fault-buffer entries dropped by pre-replay flush: %llu\n\n",
              static_cast<unsigned long long>(
                  system.gpu().fault_buffer().total_flushed()));

  const auto& first = result.log.front();
  shape_check(first.counters.raw_faults == cfg.driver.batch_size,
              "first batch is filled to the 256-fault batch-size limit by a "
              "single warp (far beyond the 56-entry uTLB cap)");
  shape_check(first.counters.prefetch_faults == first.counters.raw_faults,
              "the filling faults are all prefetch-typed");
  shape_check(system.gpu().fault_buffer().total_flushed() > 0,
              "faults past the batch limit were dropped by the flush");
  return 0;
}
