// Figure 1: access latency with the abstracted unified space increases by
// one or more orders of magnitude over explicit direct management.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 1: UVM access latency vs explicit direct management",
               "abstracted unified space raises access latency by one or "
               "more orders of magnitude");

  SystemConfig cfg = presets::scaled_titan_v(512);

  struct App {
    std::string label;
    WorkloadSpec spec;
  };
  std::vector<App> apps;
  apps.push_back({"vecadd", make_vecadd_coalesced(1 << 18)});
  apps.push_back({"stream", make_stream_triad(1 << 18)});
  {
    GemmParams p;
    p.n = 1024;
    apps.push_back({"sgemm", make_gemm(p)});
  }

  TablePrinter table({"app", "explicit(us)", "uvm kernel(us)", "slowdown",
                      "resident acc(ns)", "faulting acc(ns)",
                      "latency ratio"});
  bool all_order_of_magnitude = true;
  bool all_slower = true;
  for (const auto& app : apps) {
    const auto expl = run_explicit(app.spec, cfg);
    const auto uvm = run_once(app.spec, cfg);
    const double slowdown = static_cast<double>(uvm.kernel_time_ns) /
                            static_cast<double>(expl.total_ns);
    // Latency of an access that faults = time until its batch completes.
    double mean_batch = 0;
    for (const auto& rec : uvm.log) {
      mean_batch += static_cast<double>(rec.duration_ns());
    }
    mean_batch /= static_cast<double>(uvm.log.empty() ? 1 : uvm.log.size());
    const double resident = cfg.gpu.resident_access_ns;
    const double ratio = mean_batch / resident;

    table.add_row({app.label, fmt_us(expl.total_ns),
                   fmt_us(uvm.kernel_time_ns), fmt(slowdown, 2) + "x",
                   fmt(resident, 0), fmt(mean_batch, 0),
                   fmt(ratio, 0) + "x"});
    all_order_of_magnitude &= ratio >= 100.0;
    all_slower &= slowdown >= 2.0;
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(all_order_of_magnitude,
              "faulting-access latency >= 100x resident access latency "
              "(paper: one or more orders of magnitude)");
  shape_check(all_slower,
              "UVM kernels are severalfold slower than explicit staging "
              "even in-core");
  return 0;
}
