// Figure 12: sgemm under oversubscription. Early batches allocate freely;
// once GPU memory fills, batches that evict VABlocks pay distinctly more
// (fail-alloc + writeback + restart incl. population).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 12: sgemm with oversubscription and eviction",
               "eviction batches form a visibly more expensive population; "
               "non-evicting batches continue the in-core trend");

  // 3 x 16 MB matrices against a 32 MB GPU (~150% oversubscription).
  GemmParams p;
  p.n = 2048;
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(32));
  const auto result = run_once(make_gemm(p), cfg);

  ScatterPlot plot("data migrated (KB)", "batch time (us)", 72, 20);
  RunningStats evict_cost, plain_cost;
  std::uint64_t total_evictions = 0;
  for (const auto& rec : result.log) {
    const double kb = static_cast<double>(rec.counters.bytes_h2d) / 1024.0;
    const double us = static_cast<double>(rec.duration_ns()) / 1000.0;
    const unsigned series = rec.counters.evictions == 0
                                ? 0
                                : std::min(rec.counters.evictions, 3u);
    plot.add(kb, us, series);
    (rec.counters.evictions ? evict_cost : plain_cost).add(us);
    total_evictions += rec.counters.evictions;
  }
  std::printf("%s\n", plot.render().c_str());
  std::printf("(glyphs: '.' no eviction, 'o' 1, '+' 2, 'x' >=3 "
              "evictions)\n\n");

  TablePrinter table({"population", "batches", "mean cost(us)", "max(us)"});
  table.add_row({"no eviction", std::to_string(plain_cost.count()),
                 fmt(plain_cost.mean(), 1), fmt(plain_cost.max(), 1)});
  table.add_row({"with eviction", std::to_string(evict_cost.count()),
                 fmt(evict_cost.mean(), 1), fmt(evict_cost.max(), 1)});
  std::printf("%s\ntotal VABlocks evicted: %llu\n\n", table.render().c_str(),
              static_cast<unsigned long long>(total_evictions));

  shape_check(total_evictions > 0, "the run oversubscribed and evicted");
  shape_check(evict_cost.count() > 0 && plain_cost.count() > 0,
              "both populations (evicting / non-evicting batches) exist");
  shape_check(evict_cost.mean() > 1.5 * plain_cost.mean(),
              "eviction batches cost distinctly more than non-evicting "
              "ones");
  return 0;
}
