// Figure 9: batch-size evaluation. Larger batch sizes win — each replay
// window supplies more serviceable faults than a 256-entry batch can
// drain, so small caps force extra batch rounds (fixed overhead + replay
// each) — with diminishing returns once the cap exceeds what fault
// generation can supply per window (paper: ~500 unique; "batch sizes up
// to 6144 are tested but performance does not change" past 1024).
//
// The sweep uses the Regular workload, whose per-window unique-fault
// supply (80 SMs x tokens + reissues) exceeds the default cap the same
// way the paper's sgemm did on real hardware. A second panel shows the
// duplicate-rate side of the tradeoff on sgemm, whose panel sharing makes
// duplicates dominate large batches (§4.2: accepting more duplicates is
// still cheaper than paying for extra batches).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 9: batch size vs performance",
               "larger batches amortize per-batch overhead despite more "
               "duplicates; returns diminish past ~1024 (unique faults "
               "per window are generation-capped)");

  const auto spec = make_regular(256ULL << 20, 4, 320, 2);

  TablePrinter table({"batch size", "kernel(ms)", "batches",
                      "mean raw/batch", "mean unique/batch", "dup rate"});
  std::vector<std::uint32_t> sizes{64, 128, 256, 512, 1024, 2048, 4096, 6144};
  std::vector<double> kernel_ms;
  std::vector<double> unique_means;
  for (const std::uint32_t size : sizes) {
    SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
    cfg.driver.batch_size = size;
    const auto result = run_once(spec, cfg);
    const auto totals = fault_totals(result.log);
    const double raw_mean = static_cast<double>(totals.raw) /
                            static_cast<double>(result.log.size());
    const double unique_mean = static_cast<double>(totals.unique) /
                               static_cast<double>(result.log.size());
    const double dup_rate =
        1.0 - static_cast<double>(totals.unique) /
                  static_cast<double>(totals.raw);
    table.add_row({std::to_string(size),
                   fmt(result.kernel_time_ns / 1e6, 2),
                   std::to_string(result.log.size()), fmt(raw_mean, 1),
                   fmt(unique_mean, 1), fmt_pct(dup_rate)});
    kernel_ms.push_back(result.kernel_time_ns / 1e6);
    unique_means.push_back(unique_mean);
  }
  std::printf("regular (supply-bound sweep):\n%s\n", table.render().c_str());

  // Duplicate-rate panel: sgemm's shared panels flood large batches with
  // cross-uTLB duplicates.
  GemmParams p;
  p.n = 1024;
  TablePrinter dup_table({"batch size", "sgemm dup rate", "batches"});
  for (const std::uint32_t size : {256u, 1024u, 4096u}) {
    SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
    cfg.driver.batch_size = size;
    const auto result = run_once(make_gemm(p), cfg);
    const auto totals = fault_totals(result.log);
    dup_table.add_row({std::to_string(size),
                       fmt_pct(1.0 - static_cast<double>(totals.unique) /
                                         static_cast<double>(totals.raw)),
                       std::to_string(result.log.size())});
  }
  std::printf("sgemm (duplicate-rate tradeoff):\n%s\n",
              dup_table.render().c_str());

  // Index 2 = 256 (default), 4 = 1024, 7 = 6144.
  shape_check(kernel_ms[4] < kernel_ms[2],
              "1024-fault batches beat the 256 default");
  shape_check(kernel_ms[2] < kernel_ms[0],
              "the 256 default beats tiny 64-fault batches");
  const double tail_change =
      std::abs(kernel_ms[7] - kernel_ms[4]) / kernel_ms[4];
  shape_check(tail_change < 0.15,
              "performance is flat (<15% change) from 1024 to 6144 "
              "(paper: 'performance does not change')");
  shape_check(unique_means[7] > unique_means[2] &&
                  unique_means[7] < 1200.0,
              "unique faults per batch grow then saturate near the "
              "generation cap (paper: on the order of 500)");
  return 0;
}
