// Remote mapping vs demand migration (related-work ablation).
//
// The paper's related work (§2.3) notes that graph-processing efforts
// sidestep fault-driven migration "by utilizing the remote mapping (DMA)
// capabilities of UVM" for irregular access. This bench quantifies the
// crossover with the library's cudaMemAdvise(preferred-location-host)
// support: dense streaming favours migration (pay the fault path once,
// then HBM speed); sparse random access favours remote mapping (never
// pay batches for pages touched once).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

WorkloadSpec pinned(WorkloadSpec spec) {
  for (auto& alloc : spec.allocs) {
    alloc.advise = MemAdvise::kPreferredLocationHost;
  }
  return spec;
}

}  // namespace

int main() {
  print_header("Ablation: demand migration vs remote (DMA) mapping",
               "dense access favours migration; sparse irregular access "
               "favours pinning data on the host and reading remotely "
               "(the graph-workload pattern from the paper's related "
               "work)");

  struct Case {
    std::string label;
    WorkloadSpec spec;
  };
  std::vector<Case> cases;
  cases.push_back({"stream (dense)", make_stream_triad(1 << 17)});
  cases.push_back({"gauss-seidel (dense sweeps)", [] {
                     GaussSeidelParams p;
                     p.nx = 1024;
                     p.ny = 512;
                     return make_gauss_seidel(p);
                   }()});
  cases.push_back({"random sparse (graph proxy)",
                   make_random(1ULL << 30, 0x1234, 2, 40, 8)});

  TablePrinter table({"workload", "migrate kernel(ms)", "remote kernel(ms)",
                      "migrate batches", "remote accesses", "winner"});
  double dense_ratio = 0, sparse_ratio = 0;
  for (const auto& c : cases) {
    System migrate_system(presets::scaled_titan_v(2048));
    const auto migrate = migrate_system.run(c.spec);
    System pinned_system(presets::scaled_titan_v(2048));
    const auto remote = pinned_system.run(pinned(c.spec));

    const double ratio = static_cast<double>(remote.kernel_time_ns) /
                         static_cast<double>(migrate.kernel_time_ns);
    table.add_row({c.label, fmt(migrate.kernel_time_ns / 1e6, 2),
                   fmt(remote.kernel_time_ns / 1e6, 2),
                   std::to_string(migrate.log.size()),
                   std::to_string(remote.remote_accesses),
                   ratio > 1.0 ? "migrate" : "remote"});
    if (c.label.find("stream") != std::string::npos) dense_ratio = ratio;
    if (c.label.find("random") != std::string::npos) sparse_ratio = ratio;
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(dense_ratio > 1.0,
              "dense streaming is faster with demand migration");
  shape_check(sparse_ratio < 1.0,
              "sparse random access is faster with host-pinned remote "
              "mapping (no batches at all)");
  return 0;
}
