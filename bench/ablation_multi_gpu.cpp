// Multi-device extension (paper §1/§6): the single driver worker is a
// serial bottleneck shared by every client GPU. Scaling the client count
// with a fixed per-client workload shows per-client completion times
// stretching as the worker saturates — the "similar concerns and delays"
// the paper predicts for any HMM vendor with parallel devices.
#include "bench_util.hpp"
#include "core/multi_client.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Ablation: multiple GPU clients, one driver worker",
               "per-client time inflates with client count while the "
               "worker approaches full utilization (driver serialization "
               "across devices)");

  const auto spec = make_stream_triad(1 << 17);

  TablePrinter table({"clients", "makespan(ms)", "mean client kernel(ms)",
                      "worker busy(ms)", "worker utilization"});
  std::vector<double> mean_kernel_ms;
  std::vector<double> makespan_ms;
  for (const std::uint32_t clients : {1u, 2u, 3u, 4u}) {
    MultiClientSystem multi(presets::scaled_titan_v(256), clients);
    const auto result =
        multi.run(std::vector<WorkloadSpec>(clients, spec));

    double kernel_sum = 0;
    for (const auto& r : result.per_client) {
      kernel_sum += static_cast<double>(r.kernel_time_ns);
    }
    const double mean_ms =
        kernel_sum / static_cast<double>(clients) / 1e6;
    const double util = static_cast<double>(result.worker_busy_ns) /
                        static_cast<double>(result.makespan_ns);
    table.add_row({std::to_string(clients),
                   fmt(result.makespan_ns / 1e6, 2), fmt(mean_ms, 2),
                   fmt(result.worker_busy_ns / 1e6, 2), fmt_pct(util)});
    mean_kernel_ms.push_back(mean_ms);
    makespan_ms.push_back(result.makespan_ns / 1e6);
  }
  std::printf("%s\n", table.render().c_str());

  shape_check(mean_kernel_ms[3] > mean_kernel_ms[0],
              "per-client completion time inflates when the worker also "
              "serves other devices");
  shape_check(makespan_ms[3] > 3.0 * makespan_ms[0],
              "total completion time scales ~linearly with client count "
              "(the worker serializes all devices' fault servicing)");
  return 0;
}
