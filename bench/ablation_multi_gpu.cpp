// Multi-GPU topology ablation (paper §1/§6): the paper's single-GPU
// pipeline is the foundation for multi-device UVM, where page placement
// spans peer HBM pools. Four GPUs run an oversubscribed peer-share
// workload on three interconnects (PCIe host bounce, NVLink ring,
// NVLink all-to-all) under two placement policies: peer-first (remote
// map or migrate over NVLink) versus evict-to-host (the single-GPU
// fallback). NVLink peer placement must beat host eviction on kernel
// time, and the per-link tables show where the bytes actually flowed.
#include "bench_util.hpp"
#include "core/multi_gpu.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

const char* kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kPcieOnly:
      return "pcie";
    case TopologyKind::kNvlinkRing:
      return "nvlink-ring";
    case TopologyKind::kNvlinkAll:
      return "nvlink-all";
  }
  return "?";
}

const char* placement_name(PlacementPolicy placement) {
  return placement == PlacementPolicy::kPeerFirst ? "peer" : "host";
}

MultiGpuResult run_combo(TopologyKind kind, PlacementPolicy placement) {
  SystemConfig config = presets::scaled_titan_v(8);  // 8 MB HBM per GPU
  config.driver.multi_gpu.num_gpus = 4;
  config.driver.multi_gpu.topology = kind;
  config.driver.multi_gpu.placement = placement;
  // Access counters feed the promotion path that rescues hot
  // remote-mapped blocks (identical settings for every combo).
  config.driver.access_counters.enabled = true;
  config.driver.access_counters.evict_for_promotion = true;

  PeerShareParams params;
  params.num_gpus = 4;
  params.private_kb_per_gpu = 12 * 1024;  // oversubscribes every pool
  params.shared_kb = 512;                 // contended cross-GPU halo
  params.sweeps = 3;
  params.rotate_private = true;  // slices hand off GPU-to-GPU each sweep

  MultiGpuSystem system(config);
  return system.run(make_peer_share(params));
}

}  // namespace

int main() {
  print_header(
      "Ablation: interconnect topology x page placement, 4 GPUs",
      "under oversubscription, NVLink peer placement (remote maps + "
      "P2P migration) beats evicting to the host and re-faulting; "
      "richer topologies spread bytes over more links");

  const TopologyKind kinds[] = {TopologyKind::kPcieOnly,
                                TopologyKind::kNvlinkRing,
                                TopologyKind::kNvlinkAll};
  const PlacementPolicy placements[] = {PlacementPolicy::kPeerFirst,
                                        PlacementPolicy::kEvictHost};

  TablePrinter table({"topology", "placement", "makespan(ms)", "evictions",
                      "peer maps", "peer migr", "peer(MB)"});
  double makespan_ms[3][2] = {};
  std::vector<MultiGpuResult> peer_runs;
  for (int k = 0; k < 3; ++k) {
    for (int p = 0; p < 2; ++p) {
      const auto result = run_combo(kinds[k], placements[p]);
      makespan_ms[k][p] = static_cast<double>(result.makespan_ns) / 1e6;
      table.add_row({kind_name(kinds[k]), placement_name(placements[p]),
                     fmt(makespan_ms[k][p], 2),
                     std::to_string(result.aggregate.evictions),
                     std::to_string(result.peer_maps),
                     std::to_string(result.peer_pages_migrated),
                     fmt(static_cast<double>(result.bytes_peer) / 1e6, 2)});
      if (p == 0) peer_runs.push_back(result);
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Where the bytes flowed: per-link utilization for each topology under
  // peer-first placement.
  for (int k = 0; k < 3; ++k) {
    std::printf("per-link utilization: %s, peer placement\n",
                kind_name(kinds[k]));
    TablePrinter links({"link", "kind", "MB", "ops", "busy(ms)", "util"});
    for (const auto& link : peer_runs[static_cast<std::size_t>(k)].links) {
      links.add_row({link.name,
                     link.kind == LinkKind::kNvlink ? "nvlink" : "pcie",
                     fmt(static_cast<double>(link.bytes) / 1e6, 2),
                     std::to_string(link.ops),
                     fmt(static_cast<double>(link.busy_ns) / 1e6, 2),
                     fmt_pct(link.utilization)});
    }
    std::printf("%s\n", links.render().c_str());
  }

  shape_check(makespan_ms[1][0] < makespan_ms[1][1],
              "on the NVLink ring, peer migration/remote mapping finishes "
              "the oversubscribed sweep faster than evicting to the host");
  shape_check(makespan_ms[2][0] < makespan_ms[2][1],
              "same on the all-to-all fabric: peer placement beats "
              "host eviction");
  shape_check(makespan_ms[1][0] < makespan_ms[0][0],
              "an NVLink ring beats PCIe-only, where all peer traffic "
              "store-and-forwards through the host");
  bool nvlink_carried_bytes = false;
  for (const auto& link : peer_runs[1].links) {
    if (link.kind == LinkKind::kNvlink && link.bytes > 0) {
      nvlink_carried_bytes = true;
    }
  }
  shape_check(nvlink_carried_bytes,
              "peer placement on the ring actually moved bytes over "
              "NVLink links");
  return 0;
}
