// Figure 11: HPGMG with single-threaded vs multithreaded (OpenMP) host
// initialization. Multithreading roughly halves performance by inflating
// the unmap_mapping_range cost on the GPU fault path (per-core TLB
// shootdowns for every VABlock the host touched from many threads).
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

RunResult run_hpgmg(std::uint32_t host_threads) {
  HpgmgParams p;
  p.fine_elements_log2 = 21;
  p.levels = 4;
  p.vcycles = 1;
  p.host_threads = host_threads;
  p.interleaved_init = host_threads > 1;
  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));
  return run_once(make_hpgmg(p), cfg);
}

double mean_unmap_fraction(const BatchLog& log) {
  RunningStats stats;
  for (const auto& rec : log) {
    if (rec.counters.unmap_calls > 0) stats.add(rec.unmap_fraction());
  }
  return stats.mean();
}

}  // namespace

int main() {
  print_header("Figure 11: HPGMG host-threading vs unmap cost",
               "default OpenMP threading roughly doubles runtime vs a "
               "single host thread; the gap is unmap_mapping_range (TLB "
               "shootdown) time on the fault path");

  const auto single = run_hpgmg(1);
  const auto omp = run_hpgmg(32);

  const auto single_phases = phase_totals(single.log);
  const auto omp_phases = phase_totals(omp.log);

  TablePrinter table({"config", "kernel(ms)", "batches", "unmap total(ms)",
                      "mean unmap frac (unmap batches)"});
  table.add_row({"1 host thread", fmt(single.kernel_time_ns / 1e6, 2),
                 std::to_string(single.log.size()),
                 fmt(single_phases.unmap_ns / 1e6, 2),
                 fmt_pct(mean_unmap_fraction(single.log))});
  table.add_row({"32 host threads (OMP)", fmt(omp.kernel_time_ns / 1e6, 2),
                 std::to_string(omp.log.size()),
                 fmt(omp_phases.unmap_ns / 1e6, 2),
                 fmt_pct(mean_unmap_fraction(omp.log))});
  std::printf("%s\n", table.render().c_str());

  ScatterPlot plot("batch id", "unmap fraction of batch (%)", 72, 16);
  for (const auto& rec : omp.log) {
    plot.add(rec.id, rec.unmap_fraction() * 100.0, 4);
  }
  for (const auto& rec : single.log) {
    plot.add(rec.id, rec.unmap_fraction() * 100.0, 0);
  }
  std::printf("unmap share per batch ('.' 1 thread, '*' 32 threads):\n%s\n",
              plot.render().c_str());

  const double slowdown = static_cast<double>(omp.kernel_time_ns) /
                          static_cast<double>(single.kernel_time_ns);
  std::printf("multithreaded-init slowdown: %.2fx (paper: ~2x)\n\n",
              slowdown);

  shape_check(slowdown >= 1.4,
              "multithreaded host init substantially slows the GPU fault "
              "path (paper: ~2x)");
  shape_check(omp_phases.unmap_ns > 2 * single_phases.unmap_ns,
              "the slowdown is concentrated in unmap_mapping_range time");
  shape_check(mean_unmap_fraction(omp.log) >
                  mean_unmap_fraction(single.log),
              "unmap consumes a larger share of each affected batch under "
              "OMP init");
  return 0;
}
