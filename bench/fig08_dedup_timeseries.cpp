// Figure 8: batch sizes in time series for stream and sgemm — raw fault
// counts (upper) vs counts with duplicates removed (lower). The workload
// is application-driven and duplicates are a significant slice.
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

namespace {

void profile(const std::string& label, const WorkloadSpec& spec,
             const SystemConfig& cfg, double* dup_share,
             double* phase_variation, double* type2_share) {
  const auto result = run_once(spec, cfg);

  ScatterPlot plot("batch id", "faults per batch", 72, 16);
  for (const auto& rec : result.log) {
    plot.add(rec.id, rec.counters.raw_faults, 0);        // '.' raw
    plot.add(rec.id, rec.counters.unique_faults, 4);     // '*' deduped
  }
  std::printf("%s ('.' = raw, '*' = deduplicated):\n%s\n", label.c_str(),
              plot.render().c_str());

  const auto totals = fault_totals(result.log);
  *dup_share = 1.0 - static_cast<double>(totals.unique) /
                         static_cast<double>(totals.raw);
  const std::uint64_t dups = totals.dup_same_utlb + totals.dup_cross_utlb;
  *type2_share = dups ? static_cast<double>(totals.dup_cross_utlb) /
                            static_cast<double>(dups)
                      : 0.0;
  std::printf("  %s: %llu raw, %llu unique -> %.1f%% duplicates "
              "(type1 %llu, type2 %llu) over %zu batches\n\n",
              label.c_str(), static_cast<unsigned long long>(totals.raw),
              static_cast<unsigned long long>(totals.unique),
              *dup_share * 100.0,
              static_cast<unsigned long long>(totals.dup_same_utlb),
              static_cast<unsigned long long>(totals.dup_cross_utlb),
              result.log.size());

  // "Phases" metric: lag-1 autocorrelation of the steady-state batch-size
  // series. sgemm's k-panel phases make neighbouring batches similar
  // (positive autocorrelation); stream's frontier noise is uncorrelated.
  std::vector<double> sizes;
  for (std::size_t i = 5; i < result.log.size(); ++i) {
    sizes.push_back(result.log[i].counters.raw_faults);
  }
  *phase_variation = 0;
  if (sizes.size() > 3) {
    RunningStats all;
    for (const double s : sizes) all.add(s);
    double cov = 0;
    for (std::size_t i = 1; i < sizes.size(); ++i) {
      cov += (sizes[i] - all.mean()) * (sizes[i - 1] - all.mean());
    }
    cov /= static_cast<double>(sizes.size() - 1);
    *phase_variation = all.variance() > 0 ? cov / all.variance() : 0;
  }
}

}  // namespace

int main() {
  print_header("Figure 8: raw vs deduplicated batch sizes (stream, sgemm)",
               "dedup significantly shrinks batches for both; sgemm shows "
               "phases while stream is steady");

  SystemConfig cfg = no_prefetch(presets::scaled_titan_v(512));

  double stream_dups = 0, stream_var = 0, stream_type2 = 0;
  profile("stream", make_stream_triad(1 << 20), cfg, &stream_dups,
          &stream_var, &stream_type2);

  GemmParams p;
  p.n = 1024;
  double sgemm_dups = 0, sgemm_var = 0, sgemm_type2 = 0;
  profile("sgemm", make_gemm(p), cfg, &sgemm_dups, &sgemm_var, &sgemm_type2);

  std::printf("lag-1 autocorrelation of batch sizes: stream %.2f, "
              "sgemm %.2f\n\n",
              stream_var, sgemm_var);

  shape_check(stream_dups > 0.10 && sgemm_dups > 0.10,
              "duplicates are a significant share of both workloads' "
              "batches");
  shape_check(sgemm_type2 > 0.5 && stream_type2 < 0.2,
              "sgemm's duplicates are dominated by type-2 (cross-block "
              "panel sharing) while stream's are type-1 only — the "
              "application-driven non-uniformity the figure shows");
  return 0;
}
