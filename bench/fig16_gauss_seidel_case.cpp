// Figure 16: Gauss-Seidel case study with ~16% oversubscription and
// prefetching enabled: batch profiles (a: prefetching, b: eviction) and
// fault behaviour (c: allocation/eviction page ranges showing that LRU
// eviction degrades to "earliest allocated first").
#include "bench_util.hpp"

using namespace uvmsim;
using namespace uvmsim::bench;

int main() {
  print_header("Figure 16: Gauss-Seidel, ~16% oversubscription, prefetch on",
               "evictions coincide with renewed prefetching (fresh blocks "
               "re-trigger it); LRU evicts the earliest-allocated blocks "
               "first since the driver sees no page hits");

  // Grid 2 x (2048 x 1408 doubles) = 44 MB against a 38 MB GPU (~116%).
  GaussSeidelParams p;
  p.nx = 2048;
  p.ny = 1408;
  p.sweeps = 2;
  SystemConfig cfg = presets::scaled_titan_v(38);
  const auto result = run_once(make_gauss_seidel(p), cfg);

  // (a) batch time series, prefetch-flagged; (b) eviction-flagged.
  ScatterPlot a("batch id", "batch time (us)", 72, 14);
  for (const auto& rec : result.log) {
    a.add(rec.id, static_cast<double>(rec.duration_ns()) / 1000.0,
          rec.counters.pages_prefetched > 0 ? 4 : 0);
  }
  std::printf("(a) batch times ('*' = prefetching active):\n%s\n",
              a.render().c_str());

  ScatterPlot b("batch id", "batch time (us)", 72, 14);
  for (const auto& rec : result.log) {
    b.add(rec.id, static_cast<double>(rec.duration_ns()) / 1000.0,
          rec.counters.evictions > 0 ? 5 : 0);
  }
  std::printf("(b) batch times ('#' = eviction in batch):\n%s\n",
              b.render().c_str());

  // (c) fault behaviour: allocated (first-touch) and evicted VABlocks per
  // batch.
  ScatterPlot c("batch id", "VABlock id", 72, 18);
  std::vector<VaBlockId> eviction_order;
  for (const auto& rec : result.log) {
    for (const VaBlockId blk : rec.first_touch_blocks) c.add(rec.id, blk, 0);
    for (const VaBlockId blk : rec.evicted_blocks) {
      c.add(rec.id, blk, 5);
      eviction_order.push_back(blk);
    }
  }
  std::printf("(c) fault behaviour ('.' = first GPU touch, '#' = "
              "evicted):\n%s\n",
              c.render().c_str());

  // LRU-degenerates-to-earliest-allocated: the first quarter of evictions
  // should target the lowest-numbered blocks.
  bool lru_like = false;
  if (eviction_order.size() >= 8) {
    const std::size_t quarter = eviction_order.size() / 4;
    RunningStats early, late;
    for (std::size_t i = 0; i < eviction_order.size(); ++i) {
      (i < quarter ? early : late).add(static_cast<double>(eviction_order[i]));
    }
    lru_like = early.mean() < late.mean();
    std::printf("mean evicted-block id: first quarter %.1f vs rest %.1f\n",
                early.mean(), late.mean());
  }

  // Eviction -> prefetch coupling: batches that evict re-trigger
  // prefetching on the freshly paged-in blocks.
  std::uint32_t evict_with_prefetch = 0, evict_batches = 0;
  for (const auto& rec : result.log) {
    if (rec.counters.evictions == 0) continue;
    ++evict_batches;
    if (rec.counters.pages_prefetched > 0) ++evict_with_prefetch;
  }
  std::printf("eviction batches also prefetching: %u / %u\n\n",
              evict_with_prefetch, evict_batches);

  shape_check(!eviction_order.empty(), "oversubscription caused evictions");
  shape_check(lru_like,
              "earliest-allocated VABlocks are evicted first (LRU with no "
              "page-hit information)");
  shape_check(evict_batches == 0 ||
                  evict_with_prefetch * 2 >= evict_batches,
              "eviction and prefetching co-occur (fresh blocks re-trigger "
              "prefetch)");
  return 0;
}
